//! Disk-based B+-tree with per-node annotations.
//!
//! One engine backs both index flavours of the paper (Section 3.2):
//!
//! * the **ASign tree** — leaf entries `⟨key, sn, rid⟩` carrying a signature
//!   payload, plain internal nodes (annotation length 0);
//! * the **EMB− tree** — leaf entries carrying tuple digests and internal
//!   entries each carrying the child's digest, maintained bottom-up by an
//!   [`Annotator`].
//!
//! Layout: 4-KB pages, leaf entry = 8-byte key + 8-byte rid + fixed payload,
//! internal entry = 16-byte composite separator `(key, rid)` + 4-byte child
//! id + fixed annotation. Composite separators make descent exact even with
//! duplicate keys spanning leaves, so point operations never walk siblings.
//! Separators satisfy `sep_i ≤ min(subtree_i)` with child 0 as catch-all, so
//! neither deletions nor splits ever rewrite separators upward. Deletion
//! unlinks empty nodes but performs no rebalancing (the classic
//! lazy-deletion trade-off, cf. PostgreSQL nbtree).
//!
//! # Caching architecture
//!
//! Raw page bytes live in the shared [`BufferPool`]; decoding a page into a
//! [`Node`] (one `Vec` per entry payload) dominates query cost, so every
//! tree additionally keeps a **decoded-node cache**: an LRU map from
//! [`PageId`] to immutable `Arc<Node>`. Reads (`descend`, range scans, VO
//! construction) hit the cache first and share the same decoded node across
//! queries; only a miss touches the buffer pool and pays the decode.
//!
//! **Coherence.** Every mutation funnels through `write_node`, which
//! re-encodes the page *and* evicts its cache entry, so the next read
//! re-decodes fresh bytes. There is no other write path. Concurrent use is
//! safe because callers follow the workspace-wide discipline: writers take
//! a tree exclusively (`&mut self` methods; the sharded server orders them
//! via 2PL on the shard's `RwLock`), while concurrent readers only ever run
//! against a tree no writer holds — a reader can observe the cache, but
//! never mid-mutation state, and invalidation happens-before any subsequent
//! reader lock acquisition. Snapshot readers therefore cannot see a stale
//! node: the `Arc` they hold is immutable, and the page-id slot is
//! invalidated before the writer releases the tree. Hit/miss/eviction
//! counters are exposed via [`BTree::cache_stats`] and surfaced per shard
//! through `QsStats`.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use authdb_storage::lru::{LruList, Slot};
use authdb_storage::{BufferPool, PageId, PAGE_SIZE};

/// Default decoded-node cache capacity (nodes, not bytes). At the paper's
/// 4-KB pages a decoded node is a few KB, so this bounds the cache at a few
/// MB per tree while comfortably holding the whole hot path of a
/// 100k-entry index.
pub const DEFAULT_NODE_CACHE: usize = 1024;

/// Sentinel for "no page".
pub const NO_PAGE: PageId = PageId::MAX;

const HEADER_LEN: usize = 16;
const TAG_LEAF: u8 = 0;
const TAG_INTERNAL: u8 = 1;
const LEAF_FIXED: usize = 16; // key + rid
const INTERNAL_FIXED: usize = 20; // sep key + sep rid + child

/// Fixed sizes of the variable parts of entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeConfig {
    /// Bytes of payload per leaf entry (signature or tuple digest).
    pub payload_len: usize,
    /// Bytes of annotation per internal entry (0 = plain B+-tree).
    pub ann_len: usize,
}

impl TreeConfig {
    /// Max leaf entries per page.
    pub fn leaf_cap(&self) -> usize {
        (PAGE_SIZE - HEADER_LEN) / (LEAF_FIXED + self.payload_len)
    }

    /// Max internal entries (children) per page.
    pub fn internal_cap(&self) -> usize {
        (PAGE_SIZE - HEADER_LEN) / (INTERNAL_FIXED + self.ann_len)
    }
}

/// Maintains node annotations (digests) as the tree changes.
pub trait Annotator: Send + Sync {
    /// Annotation of a leaf node from its entries (written into `out`,
    /// `ann_len` bytes). Not called when `ann_len == 0`.
    fn leaf_ann(&self, entries: &[LeafEntry], out: &mut [u8]);
    /// Annotation of an internal node from its children's annotations.
    fn node_ann(&self, child_anns: &[&[u8]], out: &mut [u8]);
}

/// Annotator for plain trees (`ann_len == 0`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoAnnotation;

impl Annotator for NoAnnotation {
    fn leaf_ann(&self, _entries: &[LeafEntry], _out: &mut [u8]) {}
    fn node_ann(&self, _child_anns: &[&[u8]], _out: &mut [u8]) {}
}

/// A leaf entry `⟨key, rid, payload⟩`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafEntry {
    /// Search key (the indexed attribute).
    pub key: i64,
    /// Record identifier in the heap file.
    pub rid: u64,
    /// Signature (ASign) or tuple digest (EMB−).
    pub payload: Vec<u8>,
}

/// An internal entry `⟨separator, child, annotation⟩`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InternalEntry {
    /// Separator key: lower bound of the child's `(key, rid)` space.
    pub key: i64,
    /// Separator rid component.
    pub rid: u64,
    /// Child page.
    pub child: PageId,
    /// Child annotation (digest) when `ann_len > 0`.
    pub ann: Vec<u8>,
}

/// Read-only decoded view of a node (also the EMB− VO builder's input).
#[derive(Clone, Debug)]
pub enum NodeView {
    /// A leaf node with its sibling links.
    Leaf {
        /// Previous leaf (or [`NO_PAGE`]).
        prev: PageId,
        /// Next leaf (or [`NO_PAGE`]).
        next: PageId,
        /// Entries in key order.
        entries: Vec<LeafEntry>,
    },
    /// An internal node.
    Internal {
        /// Child entries in key order.
        entries: Vec<InternalEntry>,
    },
}

/// One borrowed entry surfaced by [`BTree::for_each_in_range`].
#[derive(Clone, Copy, Debug)]
pub enum RangeEvent<'a> {
    /// Greatest entry with `key < lo` (emitted first, at most once).
    LeftBoundary(&'a LeafEntry),
    /// An entry with `lo <= key <= hi`, in key order.
    Match(&'a LeafEntry),
    /// Smallest entry with `key > hi` (emitted last, at most once).
    RightBoundary(&'a LeafEntry),
}

/// Result of a range scan.
#[derive(Clone, Debug, Default)]
pub struct RangeScan {
    /// Entries with `lo <= key <= hi`, in key order.
    pub matches: Vec<LeafEntry>,
    /// Greatest entry with `key < lo` (completeness left boundary).
    pub left_boundary: Option<LeafEntry>,
    /// Smallest entry with `key > hi` (completeness right boundary).
    pub right_boundary: Option<LeafEntry>,
}

/// A disk-based B+-tree.
pub struct BTree<A: Annotator> {
    pool: BufferPool,
    config: TreeConfig,
    annotator: A,
    cache: NodeCache,
    root: PageId,
    height: usize, // 1 = root is a leaf
    len: u64,
}

// ---------------------------------------------------------------------------
// In-memory node codec
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Node {
    pub(crate) tag: u8,
    pub(crate) prev: PageId,
    pub(crate) next: PageId,
    pub(crate) leaf: Vec<LeafEntry>,
    pub(crate) internal: Vec<InternalEntry>,
}

impl Node {
    /// True iff this is a leaf node.
    pub(crate) fn is_leaf(&self) -> bool {
        self.tag == TAG_LEAF
    }

    fn new_leaf() -> Self {
        Node {
            tag: TAG_LEAF,
            prev: NO_PAGE,
            next: NO_PAGE,
            leaf: Vec::new(),
            internal: Vec::new(),
        }
    }

    fn new_internal() -> Self {
        Node {
            tag: TAG_INTERNAL,
            prev: NO_PAGE,
            next: NO_PAGE,
            leaf: Vec::new(),
            internal: Vec::new(),
        }
    }

    fn decode(buf: &[u8; PAGE_SIZE], config: &TreeConfig) -> Self {
        let tag = buf[0];
        let count = u16::from_le_bytes([buf[2], buf[3]]) as usize;
        let prev = PageId::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        let next = PageId::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        let mut node = if tag == TAG_LEAF {
            Node::new_leaf()
        } else {
            Node::new_internal()
        };
        node.prev = prev;
        node.next = next;
        let mut off = HEADER_LEN;
        if tag == TAG_LEAF {
            let step = LEAF_FIXED + config.payload_len;
            node.leaf.reserve(count);
            for _ in 0..count {
                let key = i64::from_le_bytes(buf[off..off + 8].try_into().expect("8"));
                let rid = u64::from_le_bytes(buf[off + 8..off + 16].try_into().expect("8"));
                let payload = buf[off + 16..off + step].to_vec();
                node.leaf.push(LeafEntry { key, rid, payload });
                off += step;
            }
        } else {
            let step = INTERNAL_FIXED + config.ann_len;
            node.internal.reserve(count);
            for _ in 0..count {
                let key = i64::from_le_bytes(buf[off..off + 8].try_into().expect("8"));
                let rid = u64::from_le_bytes(buf[off + 8..off + 16].try_into().expect("8"));
                let child = PageId::from_le_bytes(buf[off + 16..off + 20].try_into().expect("4"));
                let ann = buf[off + 20..off + step].to_vec();
                node.internal.push(InternalEntry {
                    key,
                    rid,
                    child,
                    ann,
                });
                off += step;
            }
        }
        node
    }

    fn encode(&self, buf: &mut [u8; PAGE_SIZE], config: &TreeConfig) {
        buf.fill(0);
        buf[0] = self.tag;
        let count = if self.tag == TAG_LEAF {
            self.leaf.len()
        } else {
            self.internal.len()
        };
        buf[2..4].copy_from_slice(&(count as u16).to_le_bytes());
        buf[4..8].copy_from_slice(&self.prev.to_le_bytes());
        buf[8..12].copy_from_slice(&self.next.to_le_bytes());
        let mut off = HEADER_LEN;
        if self.tag == TAG_LEAF {
            for e in &self.leaf {
                debug_assert_eq!(e.payload.len(), config.payload_len);
                buf[off..off + 8].copy_from_slice(&e.key.to_le_bytes());
                buf[off + 8..off + 16].copy_from_slice(&e.rid.to_le_bytes());
                buf[off + 16..off + 16 + config.payload_len].copy_from_slice(&e.payload);
                off += LEAF_FIXED + config.payload_len;
            }
        } else {
            for e in &self.internal {
                debug_assert_eq!(e.ann.len(), config.ann_len);
                buf[off..off + 8].copy_from_slice(&e.key.to_le_bytes());
                buf[off + 8..off + 16].copy_from_slice(&e.rid.to_le_bytes());
                buf[off + 16..off + 20].copy_from_slice(&e.child.to_le_bytes());
                buf[off + 20..off + 20 + config.ann_len].copy_from_slice(&e.ann);
                off += INTERNAL_FIXED + config.ann_len;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Decoded-node cache
// ---------------------------------------------------------------------------

/// Decoded-node cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCacheStats {
    /// Reads served from a decoded `Arc<Node>` (no page access, no decode).
    pub hits: u64,
    /// Reads that had to decode page bytes.
    pub misses: u64,
    /// Decoded nodes dropped to stay within capacity.
    pub evictions: u64,
}

struct CacheInner {
    map: HashMap<PageId, (Arc<Node>, Slot)>,
    lru: LruList<PageId>,
    stats: NodeCacheStats,
}

/// LRU cache of immutable decoded nodes, layered over the buffer pool.
///
/// Interior-mutable (`Mutex`) because reads are `&self`; the lock is held
/// only around map/list bookkeeping plus — on a miss — the decode itself,
/// never across tree mutation.
struct NodeCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl NodeCache {
    fn new(capacity: usize) -> Self {
        NodeCache {
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::with_capacity(capacity.min(4096)),
                lru: LruList::new(),
                stats: NodeCacheStats::default(),
            }),
        }
    }

    /// Cached read: returns the shared decoded node, calling `decode` only
    /// on a miss. With capacity 0 the cache is disabled and every read
    /// decodes (still counted as a miss, so the counters stay meaningful).
    fn get_or_insert(&self, id: PageId, decode: impl FnOnce() -> Node) -> Arc<Node> {
        if self.capacity == 0 {
            self.inner.lock().stats.misses += 1;
            return Arc::new(decode());
        }
        let mut inner = self.inner.lock();
        if let Some((node, slot)) = inner.map.get(&id) {
            let node = Arc::clone(node);
            let slot = *slot;
            inner.lru.touch(slot);
            inner.stats.hits += 1;
            return node;
        }
        inner.stats.misses += 1;
        while inner.map.len() >= self.capacity {
            let victim = inner.lru.pop_back().expect("list tracks every entry");
            inner.map.remove(&victim);
            inner.stats.evictions += 1;
        }
        let node = Arc::new(decode());
        let slot = inner.lru.push_front(id);
        inner.map.insert(id, (Arc::clone(&node), slot));
        node
    }

    /// Non-admitting lookup for write paths: no stats, no LRU touch.
    fn peek(&self, id: PageId) -> Option<Arc<Node>> {
        let inner = self.inner.lock();
        inner.map.get(&id).map(|(node, _)| Arc::clone(node))
    }

    /// Drop the cached copy of `id` (the page was just rewritten).
    fn invalidate(&self, id: PageId) {
        let mut inner = self.inner.lock();
        if let Some((_, slot)) = inner.map.remove(&id) {
            inner.lru.remove(slot);
        }
    }

    fn stats(&self) -> NodeCacheStats {
        self.inner.lock().stats
    }

    fn reset_stats(&self) {
        self.inner.lock().stats = NodeCacheStats::default();
    }
}

// ---------------------------------------------------------------------------
// Tree implementation
// ---------------------------------------------------------------------------

impl<A: Annotator> BTree<A> {
    /// Create an empty tree with the default decoded-node cache
    /// ([`DEFAULT_NODE_CACHE`] nodes).
    ///
    /// # Panics
    /// Panics if the configuration cannot fit at least two entries per node.
    pub fn new(pool: BufferPool, config: TreeConfig, annotator: A) -> Self {
        Self::with_node_cache(pool, config, annotator, DEFAULT_NODE_CACHE)
    }

    /// Create an empty tree caching at most `cache_nodes` decoded nodes
    /// (`0` disables the cache — every read decodes page bytes).
    ///
    /// # Panics
    /// Panics if the configuration cannot fit at least two entries per node.
    pub fn with_node_cache(
        pool: BufferPool,
        config: TreeConfig,
        annotator: A,
        cache_nodes: usize,
    ) -> Self {
        assert!(config.leaf_cap() >= 2, "page too small for leaf entries");
        assert!(config.internal_cap() >= 2, "page too small for children");
        let root = pool.allocate();
        let tree = BTree {
            pool,
            config,
            annotator,
            cache: NodeCache::new(cache_nodes),
            root,
            height: 1,
            len: 0,
        };
        tree.write_node(root, &Node::new_leaf());
        tree
    }

    /// The tree's layout configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// The buffer pool handle.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Root page id.
    pub fn root_id(&self) -> PageId {
        self.root
    }

    /// Number of levels (1 = the root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decoded-node cache counters.
    pub fn cache_stats(&self) -> NodeCacheStats {
        self.cache.stats()
    }

    /// Reset the decoded-node cache counters (the cached nodes stay).
    pub fn reset_cache_stats(&self) {
        self.cache.reset_stats();
    }

    /// Pre-decode the whole tree into the decoded-node cache: a breadth-
    /// first walk from the root, leaves last so that when the tree exceeds
    /// the cache capacity it is interior levels — re-decoded cheapest —
    /// that get evicted. Reads go through the normal cached path, so the
    /// pass is idempotent and a no-op for already-cached nodes.
    pub fn warm_node_cache(&self) {
        let mut level = vec![self.root];
        for _ in 1..self.height {
            let mut next = Vec::new();
            for &id in &level {
                let node = self.read(id);
                next.extend(node.internal.iter().map(|e| e.child));
            }
            level = next;
        }
        for &id in &level {
            let _ = self.read(id);
        }
    }

    /// The root annotation (the EMB− root digest); empty when `ann_len == 0`.
    pub fn root_ann(&self) -> Vec<u8> {
        if self.config.ann_len == 0 {
            return Vec::new();
        }
        let node = self.read(self.root);
        let mut out = vec![0u8; self.config.ann_len];
        match node.tag {
            TAG_LEAF => self.annotator.leaf_ann(&node.leaf, &mut out),
            _ => {
                let anns: Vec<&[u8]> = node.internal.iter().map(|e| e.ann.as_slice()).collect();
                self.annotator.node_ann(&anns, &mut out);
            }
        }
        out
    }

    /// Decoded read-only view of a node (for VO construction).
    ///
    /// Clones the entries out of the shared cache; hot in-crate readers use
    /// [`BTree::read`] and borrow instead.
    pub fn read_node(&self, id: PageId) -> NodeView {
        let node = self.read(id);
        if node.is_leaf() {
            NodeView::Leaf {
                prev: node.prev,
                next: node.next,
                entries: node.leaf.clone(),
            }
        } else {
            NodeView::Internal {
                entries: node.internal.clone(),
            }
        }
    }

    /// Cached read: shared immutable decoded node.
    pub(crate) fn read(&self, id: PageId) -> Arc<Node> {
        self.cache.get_or_insert(id, || {
            self.pool
                .with_page(id, |buf| Node::decode(buf, &self.config))
        })
    }

    /// Write-path read: an owned node the caller will mutate. Reuses a
    /// cached decode when present but never admits a new entry — the caller
    /// is about to rewrite (and thereby invalidate) this page anyway.
    fn read_owned(&self, id: PageId) -> Node {
        if let Some(node) = self.cache.peek(id) {
            return (*node).clone();
        }
        self.pool
            .with_page(id, |buf| Node::decode(buf, &self.config))
    }

    fn write_node(&self, id: PageId, node: &Node) {
        self.pool
            .with_page_mut(id, |buf| node.encode(buf, &self.config));
        self.cache.invalidate(id);
    }

    /// Route within an internal node: child whose `(key, rid)` space covers
    /// the probe, with child 0 as catch-all.
    fn route(entries: &[InternalEntry], key: i64, rid: u64) -> usize {
        entries
            .partition_point(|e| (e.key, e.rid) <= (key, rid))
            .saturating_sub(1)
    }

    /// Descend to the leaf that covers `(key, rid)`, recording
    /// `(page, child_idx)` for every internal node on the path.
    fn descend(&self, key: i64, rid: u64) -> (PageId, Vec<(PageId, usize)>) {
        let mut path = Vec::with_capacity(self.height);
        let mut current = self.root;
        loop {
            let node = self.read(current);
            if node.tag == TAG_LEAF {
                return (current, path);
            }
            let idx = Self::route(&node.internal, key, rid);
            path.push((current, idx));
            current = node.internal[idx].child;
        }
    }

    fn compute_leaf_ann(&self, node: &Node) -> Vec<u8> {
        let mut out = vec![0u8; self.config.ann_len];
        if self.config.ann_len > 0 {
            self.annotator.leaf_ann(&node.leaf, &mut out);
        }
        out
    }

    fn compute_internal_ann(&self, node: &Node) -> Vec<u8> {
        let mut out = vec![0u8; self.config.ann_len];
        if self.config.ann_len > 0 {
            let anns: Vec<&[u8]> = node.internal.iter().map(|e| e.ann.as_slice()).collect();
            self.annotator.node_ann(&anns, &mut out);
        }
        out
    }

    /// Recompute annotations from a modified child upward along `path`.
    fn propagate_ann(&mut self, path: &[(PageId, usize)], mut child_ann: Vec<u8>) {
        if self.config.ann_len == 0 {
            return;
        }
        for &(page, idx) in path.iter().rev() {
            let mut node = self.read_owned(page);
            node.internal[idx].ann = child_ann;
            self.write_node(page, &node);
            child_ann = self.compute_internal_ann(&node);
        }
    }

    /// Insert an entry. Duplicate keys are allowed; entries are ordered by
    /// `(key, rid)`. Inserting an existing `(key, rid)` adds a second copy;
    /// callers that need upsert semantics use [`BTree::update_payload`].
    ///
    /// # Panics
    /// Panics if the payload length does not match the configuration.
    pub fn insert(&mut self, key: i64, rid: u64, payload: Vec<u8>) {
        assert_eq!(payload.len(), self.config.payload_len, "payload length");
        let (leaf_id, path) = self.descend(key, rid);
        let mut leaf = self.read_owned(leaf_id);
        let pos = leaf.leaf.partition_point(|e| (e.key, e.rid) < (key, rid));
        leaf.leaf.insert(pos, LeafEntry { key, rid, payload });
        self.len += 1;

        if leaf.leaf.len() <= self.config.leaf_cap() {
            self.write_node(leaf_id, &leaf);
            let ann = self.compute_leaf_ann(&leaf);
            self.propagate_ann(&path, ann);
            return;
        }

        // Split the leaf.
        let mid = leaf.leaf.len() / 2;
        let right_entries = leaf.leaf.split_off(mid);
        let right_id = self.pool.allocate();
        let mut right = Node::new_leaf();
        right.leaf = right_entries;
        right.prev = leaf_id;
        right.next = leaf.next;
        if leaf.next != NO_PAGE {
            let mut after = self.read_owned(leaf.next);
            after.prev = right_id;
            self.write_node(leaf.next, &after);
        }
        leaf.next = right_id;
        let sep = (right.leaf[0].key, right.leaf[0].rid);
        self.write_node(leaf_id, &leaf);
        self.write_node(right_id, &right);
        let left_ann = self.compute_leaf_ann(&leaf);
        let right_ann = self.compute_leaf_ann(&right);
        self.insert_into_parent(path, leaf_id, left_ann, sep, right_id, right_ann);
    }

    /// After a child split, insert the new right sibling into the parent,
    /// splitting upward as necessary.
    fn insert_into_parent(
        &mut self,
        mut path: Vec<(PageId, usize)>,
        left_id: PageId,
        left_ann: Vec<u8>,
        sep: (i64, u64),
        right_id: PageId,
        right_ann: Vec<u8>,
    ) {
        let Some((parent_id, child_idx)) = path.pop() else {
            // The split node was the root: grow a new root.
            let new_root = self.pool.allocate();
            let mut root = Node::new_internal();
            root.internal.push(InternalEntry {
                key: i64::MIN,
                rid: 0,
                child: left_id,
                ann: left_ann,
            });
            root.internal.push(InternalEntry {
                key: sep.0,
                rid: sep.1,
                child: right_id,
                ann: right_ann,
            });
            self.write_node(new_root, &root);
            self.root = new_root;
            self.height += 1;
            return;
        };

        let mut parent = self.read_owned(parent_id);
        debug_assert_eq!(parent.internal[child_idx].child, left_id);
        parent.internal[child_idx].ann = left_ann;
        parent.internal.insert(
            child_idx + 1,
            InternalEntry {
                key: sep.0,
                rid: sep.1,
                child: right_id,
                ann: right_ann,
            },
        );

        if parent.internal.len() <= self.config.internal_cap() {
            self.write_node(parent_id, &parent);
            let ann = self.compute_internal_ann(&parent);
            self.propagate_ann(&path, ann);
            return;
        }

        // Split the internal node.
        let mid = parent.internal.len() / 2;
        let right_entries = parent.internal.split_off(mid);
        let new_right_id = self.pool.allocate();
        let mut new_right = Node::new_internal();
        new_right.internal = right_entries;
        let promote = (new_right.internal[0].key, new_right.internal[0].rid);
        self.write_node(parent_id, &parent);
        self.write_node(new_right_id, &new_right);
        let pl_ann = self.compute_internal_ann(&parent);
        let pr_ann = self.compute_internal_ann(&new_right);
        self.insert_into_parent(path, parent_id, pl_ann, promote, new_right_id, pr_ann);
    }

    /// Point lookup of the entry `(key, rid)`.
    pub fn get(&self, key: i64, rid: u64) -> Option<LeafEntry> {
        let (leaf_id, _) = self.descend(key, rid);
        let node = self.read(leaf_id);
        node.leaf
            .iter()
            .find(|e| e.key == key && e.rid == rid)
            .cloned()
    }

    /// Replace the payload of entry `(key, rid)`; returns false if absent.
    pub fn update_payload(&mut self, key: i64, rid: u64, payload: Vec<u8>) -> bool {
        assert_eq!(payload.len(), self.config.payload_len, "payload length");
        let (leaf_id, path) = self.descend(key, rid);
        let mut node = self.read_owned(leaf_id);
        let Some(e) = node.leaf.iter_mut().find(|e| e.key == key && e.rid == rid) else {
            return false;
        };
        e.payload = payload;
        let ann = self.compute_leaf_ann(&node);
        self.write_node(leaf_id, &node);
        self.propagate_ann(&path, ann);
        true
    }

    /// Delete entry `(key, rid)`; returns false if absent. Empty leaves are
    /// unlinked; no rebalancing is performed.
    pub fn delete(&mut self, key: i64, rid: u64) -> bool {
        let (leaf_id, path) = self.descend(key, rid);
        let mut node = self.read_owned(leaf_id);
        let Some(pos) = node.leaf.iter().position(|e| e.key == key && e.rid == rid) else {
            return false;
        };
        node.leaf.remove(pos);
        self.len -= 1;
        if node.leaf.is_empty() && !path.is_empty() {
            self.unlink_leaf(leaf_id, &node);
            self.write_node(leaf_id, &node);
            self.remove_child_entry(path);
        } else {
            let ann = self.compute_leaf_ann(&node);
            self.write_node(leaf_id, &node);
            self.propagate_ann(&path, ann);
        }
        true
    }

    fn unlink_leaf(&mut self, _id: PageId, node: &Node) {
        if node.prev != NO_PAGE {
            let mut p = self.read_owned(node.prev);
            p.next = node.next;
            self.write_node(node.prev, &p);
        }
        if node.next != NO_PAGE {
            let mut n = self.read_owned(node.next);
            n.prev = node.prev;
            self.write_node(node.next, &n);
        }
    }

    /// Remove the internal entry at the end of `path` (pointing at a
    /// now-empty child), recursively cleaning empty internal nodes and
    /// collapsing a single-child root.
    fn remove_child_entry(&mut self, mut path: Vec<(PageId, usize)>) {
        let Some((parent_id, idx)) = path.pop() else {
            return;
        };
        let mut parent = self.read_owned(parent_id);
        parent.internal.remove(idx);
        if parent.internal.is_empty() {
            self.write_node(parent_id, &parent);
            if path.is_empty() {
                // The root lost all children: reset to a single empty leaf.
                let leaf = self.pool.allocate();
                self.write_node(leaf, &Node::new_leaf());
                self.root = leaf;
                self.height = 1;
                return;
            }
            self.remove_child_entry(path);
            return;
        }
        self.write_node(parent_id, &parent);
        let ann = self.compute_internal_ann(&parent);
        self.propagate_ann(&path, ann);
        // Collapse a single-child root to keep the height honest.
        while self.height > 1 {
            let root = self.read(self.root);
            if root.tag == TAG_INTERNAL && root.internal.len() == 1 {
                self.root = root.internal[0].child;
                self.height -= 1;
            } else {
                break;
            }
        }
    }

    /// Range scan over `lo..=hi` with completeness boundaries.
    ///
    /// Convenience wrapper over [`BTree::for_each_in_range`] that clones
    /// every entry; proof-construction hot paths use the visitor directly
    /// and borrow.
    pub fn range(&self, lo: i64, hi: i64) -> RangeScan {
        let mut out = RangeScan::default();
        self.for_each_in_range(lo, hi, |ev| match ev {
            RangeEvent::LeftBoundary(e) => out.left_boundary = Some(e.clone()),
            RangeEvent::Match(e) => out.matches.push(e.clone()),
            RangeEvent::RightBoundary(e) => out.right_boundary = Some(e.clone()),
        });
        out
    }

    /// Zero-clone range scan over `lo..=hi`: the visitor is called with
    /// borrowed entries straight out of the shared decoded nodes, in leaf
    /// order — at most one [`RangeEvent::LeftBoundary`] (the greatest entry
    /// with `key < lo`), every [`RangeEvent::Match`], then at most one
    /// [`RangeEvent::RightBoundary`] (the smallest entry with `key > hi`).
    pub fn for_each_in_range(&self, lo: i64, hi: i64, mut f: impl FnMut(RangeEvent<'_>)) {
        if lo > hi || self.is_empty() {
            return;
        }
        let (leaf_id, _) = self.descend(lo, u64::MIN);
        let first = self.read(leaf_id);
        // Entries are (key, rid)-sorted, so everything below `lo` sits in
        // one prefix of the first leaf; the left boundary is the last entry
        // of that prefix, falling back to the previous leaf's last entry
        // (every entry there is strictly below (lo, 0)).
        let start = first.leaf.partition_point(|e| e.key < lo);
        if start > 0 {
            f(RangeEvent::LeftBoundary(&first.leaf[start - 1]));
        } else if first.prev != NO_PAGE {
            let prev = self.read(first.prev);
            if let Some(e) = prev.leaf.last() {
                f(RangeEvent::LeftBoundary(e));
            }
        }
        let mut node = first;
        let mut from = start;
        loop {
            for e in &node.leaf[from..] {
                if e.key <= hi {
                    f(RangeEvent::Match(e));
                } else {
                    f(RangeEvent::RightBoundary(e));
                    return;
                }
            }
            if node.next == NO_PAGE {
                return;
            }
            let next = node.next;
            node = self.read(next);
            from = 0;
        }
    }

    /// Full in-order scan of every entry (test/diagnostic helper).
    pub fn scan_all(&self) -> Vec<LeafEntry> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut current = self.leftmost_leaf();
        while current != NO_PAGE {
            let node = self.read(current);
            out.extend(node.leaf.iter().cloned());
            current = node.next;
        }
        out
    }

    /// Page id of the leftmost leaf.
    pub fn leftmost_leaf(&self) -> PageId {
        let mut current = self.root;
        loop {
            let node = self.read(current);
            if node.tag == TAG_LEAF {
                return current;
            }
            current = node.internal[0].child;
        }
    }

    /// Bulk-load from entries **sorted by (key, rid)**, filling nodes to
    /// `fill` of capacity (the paper assumes 2/3 average utilization).
    ///
    /// # Panics
    /// Panics if entries are unsorted, payload lengths mismatch, or the tree
    /// is not empty.
    pub fn bulk_load(&mut self, entries: &[LeafEntry], fill: f64) {
        assert!(self.is_empty(), "bulk_load requires an empty tree");
        assert!((0.1..=1.0).contains(&fill), "fill factor out of range");
        if entries.is_empty() {
            return;
        }
        assert!(
            entries
                .windows(2)
                .all(|w| (w[0].key, w[0].rid) <= (w[1].key, w[1].rid)),
            "entries must be sorted by (key, rid)"
        );
        let leaf_per = ((self.config.leaf_cap() as f64 * fill) as usize).max(1);
        let int_per = ((self.config.internal_cap() as f64 * fill) as usize).max(2);

        // Build leaf level.
        let mut level: Vec<(i64, u64, PageId, Vec<u8>)> = Vec::new();
        let mut prev_leaf: PageId = NO_PAGE;
        for chunk in entries.chunks(leaf_per) {
            assert_eq!(
                chunk[0].payload.len(),
                self.config.payload_len,
                "payload length"
            );
            let id = self.pool.allocate();
            let mut node = Node::new_leaf();
            node.leaf = chunk.to_vec();
            node.prev = prev_leaf;
            if prev_leaf != NO_PAGE {
                let mut p = self.read_owned(prev_leaf);
                p.next = id;
                self.write_node(prev_leaf, &p);
            }
            self.write_node(id, &node);
            let ann = self.compute_leaf_ann(&node);
            level.push((chunk[0].key, chunk[0].rid, id, ann));
            prev_leaf = id;
        }

        // Build internal levels.
        let mut height = 1;
        while level.len() > 1 {
            let mut next_level = Vec::with_capacity(level.len() / int_per + 1);
            for chunk in level.chunks(int_per) {
                let id = self.pool.allocate();
                let mut node = Node::new_internal();
                node.internal = chunk
                    .iter()
                    .map(|(k, r, c, a)| InternalEntry {
                        key: *k,
                        rid: *r,
                        child: *c,
                        ann: a.clone(),
                    })
                    .collect();
                self.write_node(id, &node);
                let ann = self.compute_internal_ann(&node);
                next_level.push((chunk[0].0, chunk[0].1, id, ann));
            }
            level = next_level;
            height += 1;
        }
        self.root = level[0].2;
        self.height = height;
        self.len = entries.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use authdb_storage::{BufferPool, Disk};
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    fn plain_tree(payload_len: usize) -> BTree<NoAnnotation> {
        let pool = BufferPool::new(Disk::new(), 256);
        BTree::new(
            pool,
            TreeConfig {
                payload_len,
                ann_len: 0,
            },
            NoAnnotation,
        )
    }

    fn payload(b: u8, len: usize) -> Vec<u8> {
        vec![b; len]
    }

    #[test]
    fn capacities_match_paper_scale() {
        // ASign with the paper's 20-byte signatures: (4096-16)/36 = 113 leaf
        // entries per page (paper: 146 with 4-byte keys/rids — same order).
        let c = TreeConfig {
            payload_len: 20,
            ann_len: 0,
        };
        assert_eq!(c.leaf_cap(), 113);
        assert_eq!(c.internal_cap(), 204);
        // EMB− with 20-byte digests: internal fanout shrinks to 102 (paper:
        // 97) — the digest-per-child height penalty is reproduced.
        let emb = TreeConfig {
            payload_len: 20,
            ann_len: 20,
        };
        assert_eq!(emb.internal_cap(), 102);
    }

    #[test]
    fn insert_and_get() {
        let mut t = plain_tree(8);
        for i in 0..500i64 {
            t.insert(i * 2, i as u64, payload((i % 251) as u8, 8));
        }
        assert_eq!(t.len(), 500);
        for i in 0..500i64 {
            let e = t.get(i * 2, i as u64).expect("present");
            assert_eq!(e.payload[0], (i % 251) as u8);
        }
        assert!(t.get(1, 0).is_none());
        assert!(t.get(0, 999).is_none());
    }

    #[test]
    fn random_insert_order_stays_sorted() {
        let mut t = plain_tree(4);
        let mut keys: Vec<i64> = (0..2000).collect();
        let mut rng = StdRng::seed_from_u64(3);
        keys.shuffle(&mut rng);
        for &k in &keys {
            t.insert(k, k as u64, payload(0, 4));
        }
        let all = t.scan_all();
        assert_eq!(all.len(), 2000);
        assert!(all.windows(2).all(|w| w[0].key < w[1].key));
        assert!(t.height() >= 2, "2000 entries must split");
    }

    #[test]
    fn duplicate_keys_supported() {
        let mut t = plain_tree(4);
        for rid in 0..300u64 {
            t.insert(42, rid, payload(1, 4));
        }
        t.insert(41, 0, payload(2, 4));
        t.insert(43, 0, payload(3, 4));
        let scan = t.range(42, 42);
        assert_eq!(scan.matches.len(), 300);
        assert_eq!(scan.left_boundary.unwrap().key, 41);
        assert_eq!(scan.right_boundary.unwrap().key, 43);
        // Point ops on duplicates spanning several leaves.
        assert!(t.get(42, 0).is_some());
        assert!(t.get(42, 299).is_some());
        assert!(t.update_payload(42, 150, payload(9, 4)));
        assert_eq!(t.get(42, 150).unwrap().payload, payload(9, 4));
        assert!(t.delete(42, 0));
        assert!(t.get(42, 0).is_none());
    }

    #[test]
    fn range_with_boundaries() {
        let mut t = plain_tree(4);
        for i in 0..1000i64 {
            t.insert(i * 10, i as u64, payload(0, 4));
        }
        let scan = t.range(100, 200);
        let keys: Vec<i64> = scan.matches.iter().map(|e| e.key).collect();
        assert_eq!(keys, (10..=20).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(scan.left_boundary.unwrap().key, 90);
        assert_eq!(scan.right_boundary.unwrap().key, 210);
    }

    #[test]
    fn range_at_extremes_has_open_boundaries() {
        let mut t = plain_tree(4);
        for i in 0..100i64 {
            t.insert(i, i as u64, payload(0, 4));
        }
        let scan = t.range(0, 10);
        assert!(scan.left_boundary.is_none());
        assert_eq!(scan.right_boundary.unwrap().key, 11);
        let scan = t.range(90, 99);
        assert_eq!(scan.left_boundary.unwrap().key, 89);
        assert!(scan.right_boundary.is_none());
    }

    #[test]
    fn empty_range() {
        let mut t = plain_tree(4);
        for i in 0..100i64 {
            t.insert(i * 10, i as u64, payload(0, 4));
        }
        let scan = t.range(101, 105);
        assert!(scan.matches.is_empty());
        assert_eq!(scan.left_boundary.unwrap().key, 100);
        assert_eq!(scan.right_boundary.unwrap().key, 110);
    }

    #[test]
    fn update_payload_in_place() {
        let mut t = plain_tree(4);
        for i in 0..500i64 {
            t.insert(i, i as u64, payload(0, 4));
        }
        assert!(t.update_payload(250, 250, payload(9, 4)));
        assert_eq!(t.get(250, 250).unwrap().payload, payload(9, 4));
        assert!(!t.update_payload(250, 999, payload(9, 4)));
    }

    #[test]
    fn delete_entries() {
        let mut t = plain_tree(4);
        for i in 0..1000i64 {
            t.insert(i, i as u64, payload(0, 4));
        }
        for i in (0..1000i64).step_by(2) {
            assert!(t.delete(i, i as u64), "delete {i}");
        }
        assert_eq!(t.len(), 500);
        let all = t.scan_all();
        assert!(all.iter().all(|e| e.key % 2 == 1));
        assert!(!t.delete(0, 0), "double delete");
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let mut t = plain_tree(4);
        for i in 0..300i64 {
            t.insert(i, i as u64, payload(0, 4));
        }
        for i in 0..300i64 {
            assert!(t.delete(i, i as u64));
        }
        assert!(t.is_empty());
        t.insert(7, 7, payload(7, 4));
        assert_eq!(t.scan_all().len(), 1);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let entries: Vec<LeafEntry> = (0..5000i64)
            .map(|i| LeafEntry {
                key: i,
                rid: i as u64,
                payload: payload((i % 256) as u8, 4),
            })
            .collect();
        let pool = BufferPool::new(Disk::new(), 1024);
        let mut bulk = BTree::new(
            pool,
            TreeConfig {
                payload_len: 4,
                ann_len: 0,
            },
            NoAnnotation,
        );
        bulk.bulk_load(&entries, 2.0 / 3.0);
        assert_eq!(bulk.len(), 5000);
        let all = bulk.scan_all();
        assert_eq!(all.len(), 5000);
        assert!(all.windows(2).all(|w| w[0].key < w[1].key));
        let scan = bulk.range(100, 110);
        assert_eq!(scan.matches.len(), 11);
        assert_eq!(scan.left_boundary.unwrap().key, 99);
        // Bulk-loaded trees accept further inserts.
        bulk.insert(2500, 99999, payload(5, 4));
        assert!(bulk.get(2500, 99999).is_some());
    }

    #[test]
    fn bulk_load_height_follows_fanout() {
        let entries: Vec<LeafEntry> = (0..50_000i64)
            .map(|i| LeafEntry {
                key: i,
                rid: i as u64,
                payload: payload(0, 20),
            })
            .collect();
        let pool = BufferPool::new(Disk::new(), 4096);
        let mut t = BTree::new(
            pool,
            TreeConfig {
                payload_len: 20,
                ann_len: 0,
            },
            NoAnnotation,
        );
        t.bulk_load(&entries, 2.0 / 3.0);
        let leaf_per = (113.0f64 * 2.0 / 3.0) as usize; // 75
        let leaves = 50_000usize.div_ceil(leaf_per); // 667
        let int_per = (204.0f64 * 2.0 / 3.0) as usize; // 136
        let internals = leaves.div_ceil(int_per); // 5
        let expected_height = if internals <= 1 { 2 } else { 3 };
        assert_eq!(t.height(), expected_height);
    }

    #[test]
    fn mixed_workload_consistency() {
        let mut t = plain_tree(8);
        let mut rng = StdRng::seed_from_u64(77);
        let mut model: std::collections::BTreeMap<(i64, u64), Vec<u8>> =
            std::collections::BTreeMap::new();
        for step in 0..3000 {
            let op: u8 = rng.gen_range(0..10);
            let key = rng.gen_range(0..500i64);
            let rid = rng.gen_range(0..50u64);
            match op {
                0..=5 => {
                    model.entry((key, rid)).or_insert_with(|| {
                        let p = payload((step % 256) as u8, 8);
                        t.insert(key, rid, p.clone());
                        p
                    });
                }
                6..=7 => {
                    let existed = model.remove(&(key, rid)).is_some();
                    assert_eq!(t.delete(key, rid), existed, "step {step}");
                }
                _ => {
                    let p = payload((step % 256) as u8, 8);
                    let existed = model.contains_key(&(key, rid));
                    assert_eq!(t.update_payload(key, rid, p.clone()), existed);
                    if existed {
                        model.insert((key, rid), p);
                    }
                }
            }
        }
        let all = t.scan_all();
        assert_eq!(all.len(), model.len());
        for (e, ((k, r), p)) in all.iter().zip(model.iter()) {
            assert_eq!((e.key, e.rid), (*k, *r));
            assert_eq!(&e.payload, p);
        }
    }

    #[test]
    fn range_spanning_many_leaves_after_random_deletes() {
        let mut t = plain_tree(4);
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..5000i64 {
            t.insert(i, i as u64, payload(0, 4));
        }
        let mut alive: std::collections::BTreeSet<i64> = (0..5000).collect();
        for _ in 0..2500 {
            let k = rng.gen_range(0..5000i64);
            if alive.remove(&k) {
                assert!(t.delete(k, k as u64));
            }
        }
        let scan = t.range(1000, 4000);
        let expect: Vec<i64> = alive.range(1000..=4000).copied().collect();
        let got: Vec<i64> = scan.matches.iter().map(|e| e.key).collect();
        assert_eq!(got, expect);
        let expect_left = alive.range(..1000).next_back().copied();
        assert_eq!(scan.left_boundary.map(|e| e.key), expect_left);
        let expect_right = alive.range(4001..).next().copied();
        assert_eq!(scan.right_boundary.map(|e| e.key), expect_right);
    }
}
