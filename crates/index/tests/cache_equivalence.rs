//! Decoded-node cache equivalence & invalidation correctness.
//!
//! The node cache must be *invisible*: a tree with the cache enabled and a
//! tree with it disabled, driven through the identical workload, must return
//! identical `get` / `range` / `scan_all` results and identical root
//! annotations at every step. The proptest suite drives random
//! insert/update/delete workloads (sized past the split threshold so splits
//! and unlinks occur); the deterministic tests below hit every write path
//! explicitly with a warmed cache and re-read through it.

use authdb_index::btree::{BTree, LeafEntry, NoAnnotation, RangeEvent, TreeConfig};
use authdb_index::emb::{DigestAnnotator, DigestKind};
use authdb_storage::{BufferPool, Disk};
use proptest::prelude::*;

// Payloads must be digest-length: the EMB annotator promotes a lone leaf
// payload to the node digest unchanged. 32-byte payloads also shrink
// leaf_cap to 85, so splits happen early.
const PAYLOAD: usize = 32;

fn tree(cache_nodes: usize) -> BTree<DigestAnnotator> {
    BTree::with_node_cache(
        BufferPool::new(Disk::new(), 64),
        TreeConfig {
            payload_len: PAYLOAD,
            ann_len: 32,
        },
        DigestAnnotator::new(DigestKind::Sha256),
        cache_nodes,
    )
}

fn payload(tag: u8) -> Vec<u8> {
    vec![tag; PAYLOAD]
}

/// One scripted workload operation, decoded from a proptest tuple.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(i64, u64, u8),
    Update(i64, u64, u8),
    Delete(i64, u64),
}

/// Raw tuple shape the strategy generates; keys/rids come from a small
/// domain so deletes and updates hit live entries often, and duplicate keys
/// with distinct rids occur.
type RawOp = (u8, i64, u64, u8);

fn op_strategy() -> (
    std::ops::Range<u8>,
    std::ops::Range<i64>,
    std::ops::Range<u64>,
    std::ops::Range<u8>,
) {
    (0u8..3, 0i64..400, 0u64..8, 0u8..255)
}

fn decode(raw: RawOp) -> Op {
    let (kind, key, rid, tag) = raw;
    match kind {
        0 => Op::Insert(key, rid, tag),
        1 => Op::Update(key, rid, tag),
        _ => Op::Delete(key, rid),
    }
}

fn apply(t: &mut BTree<DigestAnnotator>, op: &Op) {
    match *op {
        Op::Insert(k, r, tag) => {
            // Keep (key, rid) unique so both trees agree with a model.
            if t.get(k, r).is_none() {
                t.insert(k, r, payload(tag));
            }
        }
        Op::Update(k, r, tag) => {
            t.update_payload(k, r, payload(tag));
        }
        Op::Delete(k, r) => {
            t.delete(k, r);
        }
    }
}

fn assert_equivalent(cached: &BTree<DigestAnnotator>, uncached: &BTree<DigestAnnotator>) {
    assert_eq!(cached.len(), uncached.len());
    assert_eq!(cached.scan_all(), uncached.scan_all());
    assert_eq!(cached.root_ann(), uncached.root_ann());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cached and cache-disabled trees stay bit-identical through random
    /// mixed workloads, including splits and leaf unlinks.
    #[test]
    fn cached_tree_is_invisible(raw in prop::collection::vec(op_strategy(), 200..600)) {
        let ops: Vec<Op> = raw.into_iter().map(decode).collect();
        let mut cached = tree(256);
        let mut uncached = tree(0);
        for (step, op) in ops.iter().enumerate() {
            apply(&mut cached, op);
            apply(&mut uncached, op);
            // Point probes every step; full sweeps periodically (they're
            // O(N) each).
            let (Op::Insert(k, r, _) | Op::Update(k, r, _) | Op::Delete(k, r)) = *op;
            prop_assert_eq!(cached.get(k, r), uncached.get(k, r));
            if step % 64 == 0 {
                let a = cached.range(50, 350);
                let b = uncached.range(50, 350);
                prop_assert_eq!(a.matches, b.matches);
                prop_assert_eq!(a.left_boundary, b.left_boundary);
                prop_assert_eq!(a.right_boundary, b.right_boundary);
                prop_assert_eq!(cached.root_ann(), uncached.root_ann());
            }
        }
        assert_equivalent(&cached, &uncached);
        // The cached tree actually used its cache.
        let cs = cached.cache_stats();
        prop_assert!(cs.hits > 0, "cache never hit: {:?}", cs);
    }

    /// The visitor API agrees with the cloning `range` on both trees.
    #[test]
    fn visitor_matches_range(raw in prop::collection::vec(op_strategy(), 100..300),
                             lo in 0i64..400, width in 0i64..200) {
        let mut t = tree(256);
        for op in raw.into_iter().map(decode) {
            apply(&mut t, &op);
        }
        let hi = lo + width;
        let scan = t.range(lo, hi);
        let mut matches = Vec::new();
        let mut left = None;
        let mut right = None;
        t.for_each_in_range(lo, hi, |ev| match ev {
            RangeEvent::LeftBoundary(e) => left = Some(e.clone()),
            RangeEvent::Match(e) => matches.push(e.clone()),
            RangeEvent::RightBoundary(e) => right = Some(e.clone()),
        });
        prop_assert_eq!(scan.matches, matches);
        prop_assert_eq!(scan.left_boundary, left);
        prop_assert_eq!(scan.right_boundary, right);
    }
}

/// Warm the cache over every page (full scan + root).
fn warm(t: &BTree<DigestAnnotator>) {
    let _ = t.scan_all();
    let _ = t.root_ann();
}

/// Drive cached (warmed before mutation) and uncached trees through the
/// same mutations; any stale cached node shows up as a divergence.
#[test]
fn invalidation_insert_split() {
    let mut cached = tree(256);
    let mut uncached = tree(0);
    for i in 0..80i64 {
        cached.insert(i, i as u64, payload(1));
        uncached.insert(i, i as u64, payload(1));
    }
    warm(&cached);
    let h0 = cached.height();
    // Push both trees through many splits with the cache warm.
    for i in 80..600i64 {
        cached.insert(i, i as u64, payload(2));
        uncached.insert(i, i as u64, payload(2));
    }
    assert!(cached.height() > h0, "workload must split");
    assert_equivalent(&cached, &uncached);
    for i in 0..600i64 {
        assert_eq!(
            cached.get(i, i as u64).expect("present").payload,
            payload(if i < 80 { 1 } else { 2 })
        );
    }
}

#[test]
fn invalidation_delete_unlink() {
    let mut cached = tree(256);
    let mut uncached = tree(0);
    for i in 0..600i64 {
        cached.insert(i, i as u64, payload(3));
        uncached.insert(i, i as u64, payload(3));
    }
    warm(&cached);
    // Empty out a whole middle span so leaves unlink and sibling links are
    // rewritten, then re-read ranges crossing the seam through the cache.
    for i in 150..450i64 {
        assert!(cached.delete(i, i as u64));
        assert!(uncached.delete(i, i as u64));
    }
    let scan = cached.range(100, 500);
    let keys: Vec<i64> = scan.matches.iter().map(|e| e.key).collect();
    let expect: Vec<i64> = (100..150).chain(450..=500).collect();
    assert_eq!(keys, expect);
    assert_equivalent(&cached, &uncached);
}

#[test]
fn invalidation_update_payload() {
    let mut cached = tree(256);
    let mut uncached = tree(0);
    for i in 0..300i64 {
        cached.insert(i, i as u64, payload(4));
        uncached.insert(i, i as u64, payload(4));
    }
    warm(&cached);
    for i in 0..300i64 {
        assert!(cached.update_payload(i, i as u64, payload(5)));
        assert!(uncached.update_payload(i, i as u64, payload(5)));
    }
    assert!(cached.scan_all().iter().all(|e| e.payload == payload(5)));
    assert_equivalent(&cached, &uncached);
}

#[test]
fn invalidation_bulk_load() {
    let entries: Vec<LeafEntry> = (0..2000i64)
        .map(|i| LeafEntry {
            key: i,
            rid: i as u64,
            payload: payload((i % 250) as u8),
        })
        .collect();
    let mut cached = tree(256);
    let mut uncached = tree(0);
    // Warm the cache on the *empty* tree first (caches the empty root
    // page), then bulk-load; reads must see the loaded tree.
    warm(&cached);
    cached.bulk_load(&entries, 2.0 / 3.0);
    uncached.bulk_load(&entries, 2.0 / 3.0);
    assert_eq!(cached.scan_all(), entries);
    assert_equivalent(&cached, &uncached);
    let scan = cached.range(500, 520);
    assert_eq!(scan.matches.len(), 21);
    assert_eq!(scan.left_boundary.unwrap().key, 499);
    assert_eq!(scan.right_boundary.unwrap().key, 521);
}

/// Counters move the way the architecture promises: repeat reads hit, a
/// write invalidates exactly the rewritten pages, and a bounded cache
/// evicts.
#[test]
fn counters_reflect_cache_behaviour() {
    let mut t = tree(256);
    for i in 0..2000i64 {
        t.insert(i, i as u64, payload(7));
    }
    t.reset_cache_stats();
    let _ = t.get(1000, 1000);
    let after_first = t.cache_stats();
    let _ = t.get(1000, 1000);
    let after_second = t.cache_stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second identical probe must not decode"
    );
    assert!(after_second.hits > after_first.hits);

    // An update rewrites the leaf: the next probe of that leaf re-decodes.
    assert!(t.update_payload(1000, 1000, payload(8)));
    let before = t.cache_stats();
    assert_eq!(t.get(1000, 1000).unwrap().payload, payload(8));
    let after = t.cache_stats();
    assert!(
        after.misses > before.misses,
        "invalidated leaf must re-decode"
    );

    // A 2-node cache under a 2000-entry scan must evict.
    let small = {
        let mut s = BTree::with_node_cache(
            BufferPool::new(Disk::new(), 64),
            TreeConfig {
                payload_len: PAYLOAD,
                ann_len: 0,
            },
            NoAnnotation,
            2,
        );
        for i in 0..2000i64 {
            s.insert(i, i as u64, payload(1));
        }
        s
    };
    small.reset_cache_stats();
    let _ = small.scan_all();
    assert!(small.cache_stats().evictions > 0);
}
