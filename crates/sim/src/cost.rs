//! Cost model: operation costs that convert I/O and crypto *counts* into
//! simulated time.
//!
//! Two sources: [`CostModel::pinned`] — constants representative of the
//! paper's 2009 testbed (Table 3 "current" column and Section 5.1's
//! hardware), giving bit-for-bit reproducible experiment output — and
//! [`CostModel::measure`], which times this workspace's own SHA-256, BAS,
//! and Condensed-RSA implementations on the host.

use std::time::Instant;

use authdb_crypto::bls::{aggregate, BlsPrivateKey};
use authdb_crypto::sha256::sha256;

/// Per-operation costs in **seconds**.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// One SHA-256 over a 512-byte record.
    pub hash: f64,
    /// One signature-aggregation step (the paper's ECC addition).
    pub ecc_add: f64,
    /// Producing one BAS signature (at the DA).
    pub bas_sign: f64,
    /// Verifying a BAS aggregate: fixed part (two pairings).
    pub bas_verify_base: f64,
    /// Verifying a BAS aggregate: per-message part (hash-to-curve + add).
    pub bas_verify_per_msg: f64,
    /// One 4-KB page I/O (2009-era 5400 rpm laptop disk).
    pub page_io: f64,
    /// Buffer-pool hit ratio for internal index nodes.
    pub internal_hit: f64,
    /// Buffer-pool hit ratio for leaf/record pages.
    pub leaf_hit: f64,
    /// LAN bandwidth, bytes/second (14.4 Mbps HSDPA, Table 2).
    pub lan_bps: f64,
    /// WAN bandwidth, bytes/second (622 Mbps OC-12, Table 2).
    pub wan_bps: f64,
}

impl CostModel {
    /// Constants calibrated to the paper's testbed; the experiments'
    /// default, so bench output is deterministic.
    pub fn pinned() -> Self {
        CostModel {
            hash: 2.28e-6,               // Table 3: SHA, 512-byte message
            ecc_add: 9.06e-6,            // Table 3: 1000-sig aggregation / 1000
            bas_sign: 1.5e-3,            // Table 3: individual signing
            bas_verify_base: 40.22e-3,   // Table 3: individual verification
            bas_verify_per_msg: 0.29e-3, // Table 3: (331ms - base) / 1000
            page_io: 8e-3,               // 5400 rpm Hitachi-class random read
            internal_hit: 0.98,
            leaf_hit: 0.5,
            lan_bps: 14.4e6 / 8.0,
            wan_bps: 622e6 / 8.0,
        }
    }

    /// Measure hash/sign/aggregate/verify on this machine's actual
    /// implementations (I/O and network stay pinned — the hosts here have
    /// no 2009 disk to measure).
    pub fn measure() -> Self {
        let mut model = Self::pinned();
        // SHA-256 over 512 bytes.
        let buf = [0xA5u8; 512];
        let t = Instant::now();
        let reps = 20_000;
        for i in 0..reps {
            let mut b = buf;
            b[0] = i as u8;
            std::hint::black_box(sha256(&b));
        }
        model.hash = t.elapsed().as_secs_f64() / reps as f64;

        let mut rng = rand::rngs::mock::StepRng::new(42, 0x9E3779B97F4A7C15);
        let sk = BlsPrivateKey::generate(&mut rng);
        let pk = sk.public_key().clone();

        // Signing.
        let t = Instant::now();
        let reps = 20;
        let sigs: Vec<_> = (0..reps).map(|i: u32| sk.sign(&i.to_be_bytes())).collect();
        model.bas_sign = t.elapsed().as_secs_f64() / reps as f64;

        // Aggregation (ECC additions).
        let t = Instant::now();
        let agg_reps = 50;
        for _ in 0..agg_reps {
            std::hint::black_box(aggregate(&sigs));
        }
        model.ecc_add = t.elapsed().as_secs_f64() / (agg_reps * reps) as f64;

        // Aggregate verification: base = 2 pairings, per-message =
        // hash-to-curve + point add, derived from two batch sizes.
        let msgs: Vec<Vec<u8>> = (0..reps).map(|i| i.to_be_bytes().to_vec()).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let agg = aggregate(&sigs);
        let t = Instant::now();
        assert!(pk.verify_aggregate(&refs, &agg));
        let t_full = t.elapsed().as_secs_f64();
        let one = [sigs[0]];
        let agg1 = aggregate(&one);
        let t = Instant::now();
        assert!(pk.verify_aggregate(&refs[..1], &agg1));
        let t_one = t.elapsed().as_secs_f64();
        model.bas_verify_per_msg = ((t_full - t_one) / (reps - 1) as f64).max(1e-6);
        model.bas_verify_base = (t_one - model.bas_verify_per_msg).max(1e-4);
        model
    }

    /// Expected I/Os for one index descent of `height` levels plus
    /// `leaf_pages` leaf-page reads, given the buffer-pool hit ratios.
    pub fn descent_io(&self, height: usize, leaf_pages: usize) -> f64 {
        let internal = (height.saturating_sub(1)) as f64 * (1.0 - self.internal_hit);
        let leaves = leaf_pages as f64 * (1.0 - self.leaf_hit);
        (internal + leaves) * self.page_io
    }

    /// LAN transmission time for `bytes`.
    pub fn lan(&self, bytes: usize) -> f64 {
        bytes as f64 / self.lan_bps
    }

    /// WAN transmission time for `bytes`.
    pub fn wan(&self, bytes: usize) -> f64 {
        bytes as f64 / self.wan_bps
    }
}

/// Message-size model for the canonical wire format.
///
/// These formulas mirror `authdb-wire`'s encoding byte-for-byte (frame
/// header, tag/count/presence bytes, fixed-width integers), so the DES
/// transaction programs charge network delays for the bytes the real codec
/// ships, not a guess. The `fig_net` bench closes the loop: it measures
/// bytes-on-wire through a real TCP loopback server and asserts agreement
/// with these constants within 20% — if the codec drifts, recalibrate
/// *here* (not in the bench) so the simulator stays honest.
pub mod wire_model {
    /// Frame header: `u32` length prefix + format-version byte.
    pub const FRAME: usize = 5;
    /// One enum tag byte (e.g. the response kind).
    pub const TAG: usize = 1;
    /// A collection's `u32` count prefix.
    pub const VEC: usize = 4;
    /// An option's presence byte.
    pub const OPT: usize = 1;

    /// The shape of one per-shard selection answer, for predicting a
    /// response's size from what it actually carried.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnswerShape {
        /// Result records in this part.
        pub records: usize,
        /// Whether a gap proof is attached.
        pub gap: bool,
        /// Whether an empty-table proof is attached.
        pub vacancy: bool,
        /// Total compressed-bitmap bytes across attached summaries.
        pub summary_bitmap_bytes: usize,
        /// Number of attached summaries.
        pub summaries: usize,
    }

    /// An encoded signature: scheme tag + the scheme's `sig_len` bytes.
    pub fn signature(sig_len: usize) -> usize {
        1 + sig_len
    }

    /// One record: rid + ts + length-prefixed attributes.
    pub fn record(num_attrs: usize) -> usize {
        16 + VEC + 8 * num_attrs
    }

    /// A gap proof: the bracketing record, two neighbour keys, and its
    /// chained signature.
    pub fn gap_proof(num_attrs: usize, sig_len: usize) -> usize {
        record(num_attrs) + 16 + signature(sig_len)
    }

    /// An empty-table proof: epoch + shard tags, timestamp, signature.
    pub fn vacancy_proof(sig_len: usize) -> usize {
        24 + signature(sig_len)
    }

    /// One certified summary: five `u64` header fields (epoch, shard, seq,
    /// period start, ts), the compressed bitmap, the signature.
    pub fn summary(bitmap_bytes: usize, sig_len: usize) -> usize {
        40 + VEC + bitmap_bytes + signature(sig_len)
    }

    /// One per-shard [`SelectionAnswer`]'s encoding.
    ///
    /// [`SelectionAnswer`]: ../../authdb_core/qs/struct.SelectionAnswer.html
    pub fn selection_answer(shape: &AnswerShape, num_attrs: usize, sig_len: usize) -> usize {
        VEC + shape.records * record(num_attrs)
            + signature(sig_len)
            + 16
            + OPT
            + if shape.gap {
                gap_proof(num_attrs, sig_len)
            } else {
                0
            }
            + OPT
            + if shape.vacancy {
                vacancy_proof(sig_len)
            } else {
                0
            }
            + VEC
            + shape.summaries * summary(0, sig_len)
            + shape.summary_bitmap_bytes
    }

    /// The DA-signed shard map: epoch tag, split keys, signature.
    pub fn shard_map(splits: usize, sig_len: usize) -> usize {
        8 + VEC + 8 * splits + signature(sig_len)
    }

    /// A complete framed `Response::Selection` carrying one answer per
    /// overlapping shard.
    pub fn sharded_selection_response(
        splits: usize,
        parts: &[AnswerShape],
        num_attrs: usize,
        sig_len: usize,
    ) -> usize {
        FRAME
            + TAG
            + shard_map(splits, sig_len)
            + VEC
            + parts
                .iter()
                .map(|p| 8 + selection_answer(p, num_attrs, sig_len))
                .sum::<usize>()
    }

    /// A framed DA→QS update message (no attribute signatures, no key move,
    /// no vacancy — the common in-place case the DES models charge for).
    pub fn update_msg(num_attrs: usize, sig_len: usize) -> usize {
        FRAME + TAG + record(num_attrs) + signature(sig_len) + VEC + 2 * OPT
    }
}

/// Retry/backoff model for the resilient client under lossy transport.
///
/// `authdb-net`'s `ResilientClient` makes up to `retries + 1` attempts,
/// each failing independently with probability `p` (the fault-injection
/// rate a chaos schedule applies per connection), sleeping a jittered
/// exponential backoff between attempts. These closed forms predict the
/// aggregate cost of that machinery; the `fig_chaos` bench measures the
/// real client through a real fault-injecting proxy and asserts the
/// measured retry amplification agrees with [`retry_model::expected_attempts`]
/// within 25% — if the client's retry loop changes shape, recalibrate
/// here so the simulator keeps charging what the implementation spends.
pub mod retry_model {
    /// Expected connection attempts per request: `Σ_{k=0}^{r} p^k =
    /// (1 − p^{r+1}) / (1 − p)`. Attempt `k` happens iff the first `k`
    /// attempts all failed; the sum truncates at the retry budget, so a
    /// 20% fault rate with 3 retries costs ~1.25 attempts, not 1/0.8.
    pub fn expected_attempts(p: f64, retries: usize) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p is a probability");
        if p >= 1.0 {
            return (retries + 1) as f64;
        }
        (1.0 - p.powi(retries as i32 + 1)) / (1.0 - p)
    }

    /// Probability the request succeeds within the retry budget:
    /// `1 − p^{r+1}`. The complement is the rate at which the fan-out
    /// records an outage (and the verifier a `ShardUnavailable` tile).
    pub fn success_probability(p: f64, retries: usize) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p is a probability");
        1.0 - p.powi(retries as i32 + 1)
    }

    /// Expected total backoff sleep per request, in seconds. Retry `k`'s
    /// sleep happens iff attempts `0..=k` all failed (probability
    /// `p^{k+1}`) and averages `0.75 × min(max, base·2^k)` — the client
    /// jitters uniformly over `[0.5, 1.0]` of the ceiling.
    pub fn expected_backoff(p: f64, retries: usize, base: f64, max: f64) -> f64 {
        (0..retries)
            .map(|k| {
                let ceiling = (base * f64::powi(2.0, k as i32)).min(max);
                p.powi(k as i32 + 1) * 0.75 * ceiling
            })
            .sum()
    }

    /// Expected wall-clock per request: each failed attempt burns up to
    /// the full read timeout (stalls dominate chaos schedules — a refused
    /// connect is cheaper, so this is an upper bound), the final attempt
    /// costs one fault-free round trip, and the backoff sleeps of
    /// [`expected_backoff`] accrue between attempts.
    pub fn expected_latency(
        p: f64,
        retries: usize,
        rtt: f64,
        timeout: f64,
        base_backoff: f64,
        max_backoff: f64,
    ) -> f64 {
        let wasted: f64 = (1..=retries).map(|k| p.powi(k as i32) * timeout).sum();
        rtt + wasted + expected_backoff(p, retries, base_backoff, max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_matches_paper_table_3() {
        let m = CostModel::pinned();
        assert!((m.hash - 2.28e-6).abs() < 1e-9);
        assert!((m.ecc_add - 9.06e-6).abs() < 1e-9);
        assert!((m.bas_sign - 1.5e-3).abs() < 1e-9);
    }

    #[test]
    fn measured_model_is_sane() {
        let m = CostModel::measure();
        assert!(m.hash > 0.0 && m.hash < 1e-3, "hash {:?}", m.hash);
        assert!(m.bas_sign > m.hash, "signing slower than hashing");
        assert!(
            m.bas_verify_base > m.bas_sign,
            "pairing-based verification slower than signing"
        );
        assert!(m.ecc_add < m.bas_sign, "aggregation cheaper than signing");
    }

    #[test]
    fn network_times_scale_with_bytes() {
        let m = CostModel::pinned();
        assert!((m.lan(1800) - 0.001).abs() < 1e-4); // 1.8 KB at 14.4 Mbps ≈ 1 ms
        assert!(m.wan(1800) < m.lan(1800) / 10.0);
    }

    #[test]
    fn wire_model_component_arithmetic() {
        use super::wire_model::*;
        // A BAS-signed (33-byte point + tag), 2-attribute deployment — the
        // parameters fig_net measures against a live server.
        let (m, sig) = (2usize, 33usize);
        assert_eq!(record(m), 36);
        assert_eq!(signature(sig), 34);
        let one = AnswerShape {
            records: 10,
            ..Default::default()
        };
        // records vec + agg + boundary keys + two absent options + empty
        // summaries vec.
        assert_eq!(
            selection_answer(&one, m, sig),
            4 + 360 + 34 + 16 + 1 + 1 + 4
        );
        // Adding a summary adds exactly its header + bitmap + signature.
        let with_summary = AnswerShape {
            summaries: 1,
            summary_bitmap_bytes: 7,
            ..one
        };
        assert_eq!(
            selection_answer(&with_summary, m, sig) - selection_answer(&one, m, sig),
            summary(7, sig)
        );
        // A framed single-part response = frame + tag + map + parts vec +
        // shard index + the part.
        assert_eq!(
            sharded_selection_response(0, &[one], m, sig),
            FRAME + TAG + shard_map(0, sig) + VEC + 8 + selection_answer(&one, m, sig)
        );
    }

    #[test]
    fn retry_model_closed_forms() {
        use super::retry_model::*;
        // Fault-free: exactly one attempt, certain success, no backoff.
        assert!((expected_attempts(0.0, 3) - 1.0).abs() < 1e-12);
        assert!((success_probability(0.0, 3) - 1.0).abs() < 1e-12);
        assert!(expected_backoff(0.0, 3, 0.05, 0.8).abs() < 1e-12);

        // 20% faults, 3 retries: A = 1 + .2 + .04 + .008 = 1.248.
        assert!((expected_attempts(0.2, 3) - 1.248).abs() < 1e-12);
        // Outage rate is p^4.
        assert!((success_probability(0.2, 3) - (1.0 - 0.2f64.powi(4))).abs() < 1e-12);

        // Total loss: the budget is spent in full.
        assert!((expected_attempts(1.0, 3) - 4.0).abs() < 1e-12);
        assert!(success_probability(1.0, 3).abs() < 1e-12);

        // Backoff: p=1 forces every sleep at its mean; with base 10 ms,
        // cap 40 ms, 3 retries → 0.75 * (10 + 20 + 40) ms.
        let b = expected_backoff(1.0, 3, 0.010, 0.040);
        assert!((b - 0.75 * 0.070).abs() < 1e-12);

        // Latency is monotone in the fault rate.
        let l0 = expected_latency(0.0, 3, 0.001, 0.3, 0.01, 0.04);
        let l20 = expected_latency(0.2, 3, 0.001, 0.3, 0.01, 0.04);
        assert!((l0 - 0.001).abs() < 1e-12);
        assert!(l20 > l0);
    }

    #[test]
    fn descent_io_accounts_hit_ratios() {
        let m = CostModel::pinned();
        let warm = m.descent_io(3, 1);
        // 2 internal levels at 2% miss + 1 leaf at 50% miss.
        let expect = (2.0 * 0.02 + 0.5) * m.page_io;
        assert!((warm - expect).abs() < 1e-9);
    }
}
