//! Discrete-event simulation engine.
//!
//! Transactions are linear sequences of [`Step`]s over shared resources:
//! a multi-server CPU, a multi-server disk, single-server network links,
//! and one readers-writer lock (the EMB− root; BAS record-level locking has
//! no global choke point, so BAS programs simply omit the lock steps). The
//! engine reports per-transaction response times broken down into lock
//! waiting, server processing, and client verification — the decomposition
//! of the paper's Figures 7(b) and 9(b).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Simulated seconds.
pub type SimTime = f64;

/// Lock acquisition mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Readers (queries).
    Shared,
    /// Writers (updates).
    Exclusive,
}

/// Contended resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Res {
    /// CPU cores.
    Cpu,
    /// Disk arms.
    Disk,
    /// Server-to-user link.
    Lan,
    /// DA-to-server link.
    Wan,
}

const RES_COUNT: usize = 4;

fn res_index(r: Res) -> usize {
    match r {
        Res::Cpu => 0,
        Res::Disk => 1,
        Res::Lan => 2,
        Res::Wan => 3,
    }
}

/// One step of a transaction.
#[derive(Clone, Copy, Debug)]
pub enum Step {
    /// Acquire the global lock.
    Lock(Mode),
    /// Release the global lock.
    Unlock,
    /// Hold a resource for the given service time.
    Use(Res, SimTime),
    /// Uncontended client-side work (attributed to verification).
    Verify(SimTime),
    /// Uncontended delay (e.g. DA-side signing).
    Delay(SimTime),
}

/// Transaction classes (reporting only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnKind {
    /// A user query.
    Query,
    /// A data update forwarded from the DA.
    Update,
}

/// A transaction to simulate.
#[derive(Clone, Debug)]
pub struct TxnSpec {
    /// Arrival time.
    pub at: SimTime,
    /// Class.
    pub kind: TxnKind,
    /// The step program.
    pub steps: Vec<Step>,
}

/// Per-transaction outcome.
#[derive(Clone, Copy, Debug)]
pub struct TxnResult {
    /// Class.
    pub kind: TxnKind,
    /// Arrival time.
    pub arrived: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// Time spent waiting for the lock.
    pub lock_wait: SimTime,
    /// Time spent queueing for and holding CPU/disk/network.
    pub processing: SimTime,
    /// Client verification time.
    pub verify: SimTime,
}

impl TxnResult {
    /// Total response time.
    pub fn response(&self) -> SimTime {
        self.finished - self.arrived
    }
}

/// Aggregated statistics for one transaction class.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassStats {
    /// Transactions completed.
    pub count: usize,
    /// Mean response time (seconds).
    pub mean_response: f64,
    /// Mean lock-wait component.
    pub mean_lock_wait: f64,
    /// Mean processing component.
    pub mean_processing: f64,
    /// Mean verification component.
    pub mean_verify: f64,
}

/// Summarize results for one class.
pub fn summarize(results: &[TxnResult], kind: TxnKind) -> ClassStats {
    let rs: Vec<&TxnResult> = results.iter().filter(|r| r.kind == kind).collect();
    if rs.is_empty() {
        return ClassStats::default();
    }
    let n = rs.len() as f64;
    ClassStats {
        count: rs.len(),
        mean_response: rs.iter().map(|r| r.response()).sum::<f64>() / n,
        mean_lock_wait: rs.iter().map(|r| r.lock_wait).sum::<f64>() / n,
        mean_processing: rs.iter().map(|r| r.processing).sum::<f64>() / n,
        mean_verify: rs.iter().map(|r| r.verify).sum::<f64>() / n,
    }
}

// ---------------------------------------------------------------------------

enum Event {
    /// A transaction becomes runnable (arrival, delay expiry, lock grant).
    Wake(usize),
    /// A `Use` completes: free the resource, dispatch the queue, continue.
    Complete(usize, usize), // (txn, resource index)
}

struct Timed {
    t: SimTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for Timed {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Timed {}
impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timed {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.t.total_cmp(&self.t).then(other.seq.cmp(&self.seq))
    }
}

struct Server {
    capacity: usize,
    busy: usize,
    queue: VecDeque<(usize, SimTime)>,
}

struct RwLockState {
    readers: usize,
    writer: bool,
    queue: VecDeque<(usize, Mode)>,
}

struct TxnState {
    spec: TxnSpec,
    step: usize,
    lock_wait_start: Option<SimTime>,
    proc_wait_start: Option<SimTime>,
    lock_wait: SimTime,
    processing: SimTime,
    verify: SimTime,
    finished: Option<SimTime>,
}

/// Resource capacities.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// CPU cores at the query server (the testbed's quad-core).
    pub cpu_cores: usize,
    /// Independent disk arms (the testbed has two disks).
    pub disks: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cpu_cores: 4,
            disks: 2,
        }
    }
}

struct Engine {
    txns: Vec<TxnState>,
    servers: [Server; RES_COUNT],
    lock: RwLockState,
    events: BinaryHeap<Timed>,
    seq: u64,
}

impl Engine {
    fn push(&mut self, t: SimTime, ev: Event) {
        self.events.push(Timed {
            t,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    /// Run `idx` forward from its current step until it blocks or finishes.
    fn advance(&mut self, idx: usize, now: SimTime) {
        loop {
            let step = {
                let t = &self.txns[idx];
                if t.step >= t.spec.steps.len() {
                    self.txns[idx].finished = Some(now);
                    return;
                }
                t.spec.steps[t.step]
            };
            match step {
                Step::Delay(d) => {
                    self.txns[idx].step += 1;
                    self.push(now + d, Event::Wake(idx));
                    return;
                }
                Step::Verify(d) => {
                    self.txns[idx].step += 1;
                    self.txns[idx].verify += d;
                    self.push(now + d, Event::Wake(idx));
                    return;
                }
                Step::Use(res, d) => {
                    let r = res_index(res);
                    if self.servers[r].busy < self.servers[r].capacity {
                        self.servers[r].busy += 1;
                        self.txns[idx].step += 1;
                        self.txns[idx].processing += d;
                        self.push(now + d, Event::Complete(idx, r));
                    } else {
                        self.servers[r].queue.push_back((idx, d));
                        self.txns[idx].proc_wait_start = Some(now);
                    }
                    return;
                }
                Step::Lock(mode) => {
                    let free = match mode {
                        Mode::Shared => !self.lock.writer && self.lock.queue.is_empty(),
                        Mode::Exclusive => {
                            !self.lock.writer
                                && self.lock.readers == 0
                                && self.lock.queue.is_empty()
                        }
                    };
                    if free {
                        match mode {
                            Mode::Shared => self.lock.readers += 1,
                            Mode::Exclusive => self.lock.writer = true,
                        }
                        self.txns[idx].step += 1;
                        continue;
                    }
                    self.lock.queue.push_back((idx, mode));
                    self.txns[idx].lock_wait_start = Some(now);
                    return;
                }
                Step::Unlock => {
                    if self.lock.writer {
                        self.lock.writer = false;
                    } else {
                        self.lock.readers = self.lock.readers.saturating_sub(1);
                    }
                    self.txns[idx].step += 1;
                    self.grant_lock(now);
                    continue;
                }
            }
        }
    }

    /// FIFO lock grant: a leading writer alone (once readers drain), or the
    /// maximal leading run of readers.
    fn grant_lock(&mut self, now: SimTime) {
        let mut woken = Vec::new();
        while let Some(&(head, mode)) = self.lock.queue.front() {
            match mode {
                Mode::Exclusive => {
                    if self.lock.readers == 0 && !self.lock.writer && woken.is_empty() {
                        self.lock.writer = true;
                        self.lock.queue.pop_front();
                        woken.push(head);
                    }
                    break;
                }
                Mode::Shared => {
                    if self.lock.writer {
                        break;
                    }
                    self.lock.readers += 1;
                    self.lock.queue.pop_front();
                    woken.push(head);
                }
            }
        }
        for w in woken {
            // Past its Lock step; account the wait when the wake fires.
            self.txns[w].step += 1;
            self.push(now, Event::Wake(w));
        }
    }
}

/// Run the simulation to completion.
pub fn run(config: SimConfig, specs: Vec<TxnSpec>) -> Vec<TxnResult> {
    let mut engine = Engine {
        txns: specs
            .into_iter()
            .map(|spec| TxnState {
                spec,
                step: 0,
                lock_wait_start: None,
                proc_wait_start: None,
                lock_wait: 0.0,
                processing: 0.0,
                verify: 0.0,
                finished: None,
            })
            .collect(),
        servers: [
            Server {
                capacity: config.cpu_cores,
                busy: 0,
                queue: VecDeque::new(),
            },
            Server {
                capacity: config.disks,
                busy: 0,
                queue: VecDeque::new(),
            },
            Server {
                capacity: 1,
                busy: 0,
                queue: VecDeque::new(),
            },
            Server {
                capacity: 1,
                busy: 0,
                queue: VecDeque::new(),
            },
        ],
        lock: RwLockState {
            readers: 0,
            writer: false,
            queue: VecDeque::new(),
        },
        events: BinaryHeap::new(),
        seq: 0,
    };
    for i in 0..engine.txns.len() {
        let at = engine.txns[i].spec.at;
        engine.push(at, Event::Wake(i));
    }

    while let Some(Timed { t, ev, .. }) = engine.events.pop() {
        match ev {
            Event::Wake(idx) => {
                if let Some(start) = engine.txns[idx].lock_wait_start.take() {
                    engine.txns[idx].lock_wait += t - start;
                }
                engine.advance(idx, t);
            }
            Event::Complete(idx, r) => {
                engine.servers[r].busy -= 1;
                // Dispatch the next queued job on this resource.
                if let Some((next, d)) = engine.servers[r].queue.pop_front() {
                    engine.servers[r].busy += 1;
                    if let Some(start) = engine.txns[next].proc_wait_start.take() {
                        engine.txns[next].processing += t - start;
                    }
                    engine.txns[next].step += 1;
                    engine.txns[next].processing += d;
                    engine.push(t + d, Event::Complete(next, r));
                }
                engine.advance(idx, t);
            }
        }
    }

    engine
        .txns
        .into_iter()
        .map(|t| TxnResult {
            kind: t.spec.kind,
            arrived: t.spec.at,
            finished: t.finished.expect("all transactions complete"),
            lock_wait: t.lock_wait,
            processing: t.processing,
            verify: t.verify,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(at: f64, kind: TxnKind, steps: Vec<Step>) -> TxnSpec {
        TxnSpec { at, kind, steps }
    }

    #[test]
    fn single_transaction_timing() {
        let res = run(
            SimConfig::default(),
            vec![txn(
                0.0,
                TxnKind::Query,
                vec![Step::Use(Res::Cpu, 0.010), Step::Verify(0.005)],
            )],
        );
        assert!((res[0].response() - 0.015).abs() < 1e-9);
        assert!((res[0].verify - 0.005).abs() < 1e-9);
        assert!((res[0].processing - 0.010).abs() < 1e-9);
    }

    #[test]
    fn fcfs_queueing_on_single_server() {
        // Two jobs on the 1-server LAN: second waits for the first.
        let res = run(
            SimConfig::default(),
            vec![
                txn(0.0, TxnKind::Query, vec![Step::Use(Res::Lan, 0.010)]),
                txn(0.001, TxnKind::Query, vec![Step::Use(Res::Lan, 0.010)]),
            ],
        );
        assert!((res[0].finished - 0.010).abs() < 1e-9);
        assert!((res[1].finished - 0.020).abs() < 1e-9);
        // Second job's processing includes its queue wait.
        assert!((res[1].processing - 0.019).abs() < 1e-9);
    }

    #[test]
    fn multi_core_cpu_runs_in_parallel() {
        let specs: Vec<TxnSpec> = (0..4)
            .map(|i| {
                txn(
                    i as f64 * 1e-6,
                    TxnKind::Query,
                    vec![Step::Use(Res::Cpu, 0.010)],
                )
            })
            .collect();
        let res = run(
            SimConfig {
                cpu_cores: 4,
                disks: 1,
            },
            specs,
        );
        for r in &res {
            assert!(r.response() < 0.0101, "all four run concurrently");
        }
    }

    #[test]
    fn exclusive_lock_serializes() {
        let w = |at: f64| {
            txn(
                at,
                TxnKind::Update,
                vec![
                    Step::Lock(Mode::Exclusive),
                    Step::Use(Res::Cpu, 0.010),
                    Step::Unlock,
                ],
            )
        };
        let res = run(
            SimConfig {
                cpu_cores: 8,
                disks: 1,
            },
            vec![w(0.0), w(0.0)],
        );
        let mut finishes: Vec<f64> = res.iter().map(|r| r.finished).collect();
        finishes.sort_by(f64::total_cmp);
        assert!((finishes[0] - 0.010).abs() < 1e-9);
        assert!((finishes[1] - 0.020).abs() < 1e-9);
        // One of them waited ~10ms on the lock.
        let total_lock_wait: f64 = res.iter().map(|r| r.lock_wait).sum();
        assert!((total_lock_wait - 0.010).abs() < 1e-9);
    }

    #[test]
    fn shared_locks_overlap() {
        let r = |at: f64| {
            txn(
                at,
                TxnKind::Query,
                vec![Step::Lock(Mode::Shared), Step::Delay(0.010), Step::Unlock],
            )
        };
        let res = run(SimConfig::default(), vec![r(0.0), r(0.0), r(0.0)]);
        for x in &res {
            assert!(x.response() < 0.0101);
            assert!(x.lock_wait < 1e-9);
        }
    }

    #[test]
    fn writer_blocks_readers_fifo() {
        // Reader holds; writer queues; later reader queues behind writer
        // (FIFO fairness — no reader starvation of writers).
        let specs = vec![
            txn(
                0.0,
                TxnKind::Query,
                vec![Step::Lock(Mode::Shared), Step::Delay(0.010), Step::Unlock],
            ),
            txn(
                0.001,
                TxnKind::Update,
                vec![
                    Step::Lock(Mode::Exclusive),
                    Step::Delay(0.010),
                    Step::Unlock,
                ],
            ),
            txn(
                0.002,
                TxnKind::Query,
                vec![Step::Lock(Mode::Shared), Step::Delay(0.010), Step::Unlock],
            ),
        ];
        let res = run(SimConfig::default(), specs);
        assert!((res[0].finished - 0.010).abs() < 1e-9);
        assert!((res[1].finished - 0.020).abs() < 1e-9, "writer next");
        assert!(
            (res[2].finished - 0.030).abs() < 1e-9,
            "reader after writer"
        );
    }

    #[test]
    fn saturation_raises_response_times() {
        // Offered load > capacity on the disk: response times must grow
        // with arrival index (queue build-up).
        let specs: Vec<TxnSpec> = (0..200)
            .map(|i| {
                txn(
                    i as f64 * 0.004, // 250/s against 2 disks x 100/s = 200/s
                    TxnKind::Query,
                    vec![Step::Use(Res::Disk, 0.010)],
                )
            })
            .collect();
        let res = run(SimConfig::default(), specs);
        let first_10: f64 = res[..10].iter().map(|r| r.response()).sum::<f64>() / 10.0;
        let last_10: f64 = res[190..].iter().map(|r| r.response()).sum::<f64>() / 10.0;
        assert!(last_10 > 3.0 * first_10, "first {first_10} last {last_10}");
    }

    #[test]
    fn summarize_splits_by_kind() {
        let res = run(
            SimConfig::default(),
            vec![
                txn(0.0, TxnKind::Query, vec![Step::Verify(0.004)]),
                txn(0.0, TxnKind::Update, vec![Step::Delay(0.008)]),
            ],
        );
        let q = summarize(&res, TxnKind::Query);
        let u = summarize(&res, TxnKind::Update);
        assert_eq!(q.count, 1);
        assert_eq!(u.count, 1);
        assert!((q.mean_verify - 0.004).abs() < 1e-9);
        assert!((u.mean_response - 0.008).abs() < 1e-9);
    }
}
