//! Transaction-program builders for the EMB− and BAS server models, and the
//! experiment driver behind Figures 7 and 9.
//!
//! Server-side service times are **calibrated to Table 4's standalone
//! measurements** (query/update construction time as a linear per-record
//! cost), because they bundle implementation work no first-principles I/O
//! count captures; the `table4` bench produces this workspace's own
//! measured versions of the same constants. What the simulator *adds* is
//! the contention structure: an EMB− update holds the index **exclusively**
//! while the root path is re-hashed (queries hold it shared), whereas a BAS
//! update locks only its record — with uniformly distributed single-record
//! updates the collision probability is negligible and BAS programs carry
//! no global lock step at all (Section 3.2's concurrency argument). The
//! user-side 14.4 Mbps HSDPA link is per-user (a delay, not a shared
//! queue); the DA-side OC-12 WAN likewise.

use rand::Rng;

use crate::cost::{wire_model, CostModel};
use crate::des::{self, ClassStats, Mode, Res, SimConfig, Step, TxnKind, TxnSpec};

/// Calibrated per-transaction server costs (seconds), linear in the number
/// of records touched: `base + per_record * (k - 1)`.
#[derive(Clone, Copy, Debug)]
pub struct ServiceTimes {
    /// EMB− query: base / per-record.
    pub emb_query: (f64, f64),
    /// EMB− update (exclusive section): base / per-record.
    pub emb_update: (f64, f64),
    /// BAS query: base / per-record.
    pub bas_query: (f64, f64),
    /// BAS update: base / per-record.
    pub bas_update: (f64, f64),
    /// EMB− client verification: base / per-record.
    pub emb_verify: (f64, f64),
    /// BAS client verification: base / per-record.
    pub bas_verify: (f64, f64),
}

impl ServiceTimes {
    /// Constants interpolated from the paper's Table 4 (sf = 10⁻⁶ and
    /// 10⁻³ cells on the 2009 testbed).
    pub fn paper_table4() -> Self {
        ServiceTimes {
            emb_query: (35.3e-3, (129.8e-3 - 35.3e-3) / 999.0),
            emb_update: (60.2e-3, (248.9e-3 - 60.2e-3) / 999.0),
            bas_query: (31.4e-3, (61.5e-3 - 31.4e-3) / 999.0),
            bas_update: (40.2e-3, (237.4e-3 - 40.2e-3) / 999.0),
            emb_verify: (139.0e-3, (171.0e-3 - 139.0e-3) / 999.0),
            bas_verify: (42.9e-3, (375.0e-3 - 42.9e-3) / 999.0),
        }
    }

    fn linear(pair: (f64, f64), k: usize) -> f64 {
        pair.0 + pair.1 * (k.saturating_sub(1)) as f64
    }
}

/// Static description of the simulated database/system.
#[derive(Clone, Copy, Debug)]
pub struct SystemModel {
    /// Records in the relation.
    pub n: u64,
    /// Record length in bytes (heap layout; the wire format ships only the
    /// meaningful fields, see [`wire_model::record`]).
    pub record_len: usize,
    /// Attributes per record (drives the wire-format record size).
    pub num_attrs: usize,
    /// Digest/signature wire length.
    pub sig_len: usize,
    /// Calibrated service times.
    pub service: ServiceTimes,
}

impl SystemModel {
    /// The paper's default 1M-record database.
    pub fn paper_defaults() -> Self {
        SystemModel {
            n: 1_000_000,
            record_len: 512,
            num_attrs: 4,
            sig_len: 20,
            service: ServiceTimes::paper_table4(),
        }
    }
}

/// Split a server service time between CPU cores and disk arms (the two
/// contended server resources; an even split matches the mixed CPU/I-O
/// nature of proof construction).
fn server_use(total: f64) -> [Step; 2] {
    [
        Step::Use(Res::Cpu, total * 0.5),
        Step::Use(Res::Disk, total * 0.5),
    ]
}

/// Build a BAS range-query program for `q` result records. The answer
/// travels in the canonical wire format (one framed single-shard selection
/// response; summaries amortized per Section 5.3), so the LAN delay charges
/// the bytes `authdb-net` actually ships — `fig_net` regression-checks this
/// against a live loopback server.
pub fn bas_query(q: usize, sys: &SystemModel, cost: &CostModel) -> Vec<Step> {
    let service = ServiceTimes::linear(sys.service.bas_query, q);
    let shape = wire_model::AnswerShape {
        records: q,
        ..Default::default()
    };
    let answer_bytes =
        wire_model::sharded_selection_response(0, &[shape], sys.num_attrs, sys.sig_len);
    let [cpu, disk] = server_use(service);
    vec![
        cpu,
        disk,
        Step::Delay(cost.lan(answer_bytes)), // per-user HSDPA downlink
        Step::Verify(ServiceTimes::linear(sys.service.bas_verify, q)),
    ]
}

/// Build a BAS update program for `k` records (record-level locks only).
/// Dissemination ships framed wire-format [`UpdateMsg`]s
/// ([`wire_model::update_msg`]).
///
/// [`UpdateMsg`]: ../../authdb_core/da/struct.UpdateMsg.html
pub fn bas_update(k: usize, sys: &SystemModel, cost: &CostModel) -> Vec<Step> {
    let service = ServiceTimes::linear(sys.service.bas_update, k);
    let wire = cost.wan(k * wire_model::update_msg(sys.num_attrs, sys.sig_len));
    let [cpu, disk] = server_use(service);
    vec![Step::Delay(cost.bas_sign * k as f64 + wire), cpu, disk]
}

/// Build an EMB− range-query program: the whole service runs under the
/// shared index lock.
pub fn emb_query(q: usize, sys: &SystemModel, cost: &CostModel) -> Vec<Step> {
    let service = ServiceTimes::linear(sys.service.emb_query, q);
    let vo_bytes = 440 + q / 3; // Table 4 scale: 440 B point, ~720 B range
    let answer_bytes = q * sys.record_len + vo_bytes;
    let [cpu, disk] = server_use(service);
    vec![
        Step::Lock(Mode::Shared),
        cpu,
        disk,
        Step::Unlock,
        Step::Delay(cost.lan(answer_bytes)),
        Step::Verify(ServiceTimes::linear(sys.service.emb_verify, q)),
    ]
}

/// Build an EMB− update program: DA signing + WAN, then the root-path
/// modification under the exclusive index lock.
pub fn emb_update(k: usize, sys: &SystemModel, cost: &CostModel) -> Vec<Step> {
    let service = ServiceTimes::linear(sys.service.emb_update, k);
    let wire = cost.wan(k * sys.record_len + sys.sig_len);
    let [cpu, disk] = server_use(service);
    vec![
        Step::Delay(cost.bas_sign + wire), // one root signature
        Step::Lock(Mode::Exclusive),
        cpu,
        disk,
        Step::Unlock,
    ]
}

/// Which system a workload targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// The paper's signature-aggregation scheme.
    Bas,
    /// The Merkle baseline.
    Emb,
}

/// Experiment outcome at one arrival rate.
#[derive(Clone, Copy, Debug)]
pub struct LoadPoint {
    /// Offered arrival rate (jobs/second).
    pub rate: f64,
    /// Query-class statistics.
    pub query: ClassStats,
    /// Update-class statistics.
    pub update: ClassStats,
}

/// Drive one (system, rate) cell of Figures 7/9: Poisson arrivals at
/// `rate` jobs/s for `duration` simulated seconds, `upd_pct`% updates,
/// query cardinality uniform in `[q/2, 3q/2]` (Section 5.1's selectivity
/// window around `sf`).
#[allow(clippy::too_many_arguments)]
pub fn run_load(
    system: System,
    rate: f64,
    upd_pct: f64,
    q_records: usize,
    duration: f64,
    sys: &SystemModel,
    cost: &CostModel,
    rng: &mut impl Rng,
) -> LoadPoint {
    let mut specs = Vec::new();
    let mut t = 0.0;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate;
        if t >= duration {
            break;
        }
        let is_update = rng.gen_bool(upd_pct / 100.0);
        let q = if q_records <= 1 {
            1
        } else {
            rng.gen_range(q_records / 2..=q_records * 3 / 2).max(1)
        };
        let steps = match (system, is_update) {
            (System::Bas, false) => bas_query(q, sys, cost),
            (System::Bas, true) => bas_update(1, sys, cost),
            (System::Emb, false) => emb_query(q, sys, cost),
            (System::Emb, true) => emb_update(1, sys, cost),
        };
        specs.push(TxnSpec {
            at: t,
            kind: if is_update {
                TxnKind::Update
            } else {
                TxnKind::Query
            },
            steps,
        });
    }
    let results = des::run(SimConfig::default(), specs);
    LoadPoint {
        rate,
        query: des::summarize(&results, TxnKind::Query),
        update: des::summarize(&results, TxnKind::Update),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> (SystemModel, CostModel) {
        (SystemModel::paper_defaults(), CostModel::pinned())
    }

    #[test]
    fn bas_point_query_faster_than_emb_under_load() {
        // Figure 7's qualitative claim: at high point-query rates, EMB-
        // responds slower than BAS (lock contention).
        let (sys, cost) = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let bas = run_load(System::Bas, 100.0, 10.0, 1, 30.0, &sys, &cost, &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let emb = run_load(System::Emb, 100.0, 10.0, 1, 30.0, &sys, &cost, &mut rng);
        assert!(
            emb.query.mean_response > bas.query.mean_response,
            "emb {} vs bas {}",
            emb.query.mean_response,
            bas.query.mean_response
        );
    }

    #[test]
    fn emb_lock_wait_grows_with_rate() {
        let (sys, cost) = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let low = run_load(System::Emb, 2.0, 10.0, 1000, 30.0, &sys, &cost, &mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let high = run_load(System::Emb, 12.0, 10.0, 1000, 30.0, &sys, &cost, &mut rng);
        assert!(
            high.query.mean_lock_wait > low.query.mean_lock_wait,
            "low {} high {}",
            low.query.mean_lock_wait,
            high.query.mean_lock_wait
        );
    }

    #[test]
    fn bas_updates_disseminate_quickly() {
        // The freshness headline: BAS update latency stays near its
        // contention-free service time even under load.
        let (sys, cost) = ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let pt = run_load(System::Bas, 100.0, 10.0, 1, 30.0, &sys, &cost, &mut rng);
        assert!(pt.update.count > 0);
        assert!(
            pt.update.mean_response < 0.100,
            "bas update {}",
            pt.update.mean_response
        );
    }

    #[test]
    fn emb_saturates_before_bas_on_range_queries() {
        // Figure 9's headline: EMB- melts down at ~10-20 jobs/s on
        // 1000-record queries while BAS stays responsive at 45.
        let (sys, cost) = ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let emb = run_load(System::Emb, 30.0, 10.0, 1000, 40.0, &sys, &cost, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let bas = run_load(System::Bas, 45.0, 10.0, 1000, 40.0, &sys, &cost, &mut rng);
        assert!(
            emb.query.mean_response > 2.0 * bas.query.mean_response,
            "emb@30 {} vs bas@45 {}",
            emb.query.mean_response,
            bas.query.mean_response
        );
        assert!(bas.query.mean_response < 2.0, "BAS must stay responsive");
    }

    #[test]
    fn verification_component_present() {
        let (sys, cost) = ctx();
        let mut rng = StdRng::seed_from_u64(5);
        let pt = run_load(System::Bas, 10.0, 0.0, 100, 10.0, &sys, &cost, &mut rng);
        assert!(pt.query.mean_verify > 0.0);
    }
}
