#![forbid(unsafe_code)]
//! # authdb-sim
//!
//! Discrete-event simulation of the paper's evaluation testbed
//! (Section 5.1): Poisson transaction arrivals into a quad-core,
//! two-disk query server connected over an OC-12 WAN (DA side) and a
//! 14.4 Mbps HSDPA LAN (user side). As in the paper, the networks (and
//! here the 2009-era disks) are simulated; the crypto costs come from
//! this workspace's real implementations via [`cost::CostModel::measure`]
//! or the paper-calibrated [`cost::CostModel::pinned`] constants.
//!
//! * [`des`] — the event engine (servers, FIFO readers-writer lock).
//! * [`cost`] — the operation cost model.
//! * [`models`] — EMB−/BAS transaction programs and the load driver for
//!   Figures 7 and 9.

pub mod cost;
pub mod des;
pub mod models;

pub use cost::CostModel;
pub use des::{
    run, summarize, ClassStats, Mode, Res, SimConfig, Step, TxnKind, TxnResult, TxnSpec,
};
pub use models::{run_load, LoadPoint, System, SystemModel};
