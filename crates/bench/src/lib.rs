#![forbid(unsafe_code)]
//! Shared helpers for the `authdb` benchmark harnesses.
//!
//! Every table/figure of the paper's evaluation has a `harness = false`
//! bench target in `benches/` that prints the same rows or series the paper
//! reports, plus a machine-readable CSV block. Scale knobs:
//!
//! * `AUTHDB_N` — records in the main relation (default 100,000; the
//!   paper's 1,000,000 works but takes correspondingly longer to certify).
//! * `AUTHDB_JOBS` — signer threads for bootstrap (default: all cores).
//! * `AUTHDB_FULL=1` — run every experiment at full paper scale.

use std::time::Instant;

/// Records for database-scale experiments.
pub fn env_n() -> usize {
    if full_scale() {
        return 1_000_000;
    }
    std::env::var("AUTHDB_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

/// Signer threads.
pub fn env_jobs() -> usize {
    std::env::var("AUTHDB_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
}

/// Whether to run at the paper's full scale.
pub fn full_scale() -> bool {
    std::env::var("AUTHDB_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Print a header banner for a bench.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("==============================================================");
    println!("{id} — {caption}");
    println!("==============================================================");
}

/// Print a CSV block delimiter so output is machine-parseable.
pub fn csv_begin(columns: &str) {
    println!("--- csv ---");
    println!("{columns}");
}

/// End the CSV block.
pub fn csv_end() {
    println!("--- end csv ---");
}

/// Time a closure, returning (result, seconds).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Format seconds as adaptive ms/µs/s.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.2} µs", secs * 1e6)
    }
}

/// Format bytes as adaptive B/KB/MB.
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.2} KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}
