//! fig_conc: aggregate throughput of the event-loop server under
//! concurrent, multiplexed connections.
//!
//! The tentpole claim of the concurrency refactor is that tearing out the
//! server-wide lock — per-shard snapshots on the answer path, a readiness
//! event loop on the transport, pipelined `Request::Tagged` batches on the
//! wire — turns the networked QS from "one outstanding request at a time"
//! into a service whose aggregate throughput scales with offered
//! concurrency. This bench measures aggregate queries/sec and p99 window
//! round-trip as concurrent connections grow 1 → 64, each connection
//! keeping a pipelined window in flight, on two transports:
//!
//! * **loopback** — zero RTT, so the measurement isolates the per-exchange
//!   overhead (syscalls, scheduler ping-pong, loop wakeups) that
//!   pipelining amortizes; the win is bounded by proof-construction CPU
//!   on a single-core runner;
//! * **a simulated client link** (1 ms one-way delay injected by a
//!   full-duplex byte relay) — the paper's Section 5 deployment shape,
//!   where clients reach the publisher over real links. Here multiplexing
//!   pays twice: a pipelined window crosses the link once per *batch*
//!   instead of once per query, and the event loop serves many
//!   RTT-bound connections while their bytes are in flight.
//!
//! Both sweeps run with and without a live DA update stream applying
//! certified inserts through the server handle mid-measurement —
//! concurrency must not depend on the replica being read-only.
//!
//! The serialized baseline (one connection, one outstanding request,
//! classic request/response — the pre-refactor service discipline) is
//! measured per transport. Acceptance bar: on the client link, 16
//! connections must deliver at least 4× the serialized aggregate qps.
//! (Companion numbers: `fig_net` measures the same stack serialized with
//! BAS crypto and ~128-record answers at 0.26–0.54 ms/query; this bench
//! uses Mock point lookups so the transport, not the signature scheme,
//! is the subject.)

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use authdb_bench::{banner, csv_begin, csv_end, env_jobs, fmt_time};
use authdb_core::da::{DaConfig, SigningMode};
use authdb_core::qs::QsOptions;
use authdb_core::record::Schema;
use authdb_core::shard::{ShardedAggregator, ShardedQueryServer};
use authdb_core::verify::{EpochView, Verifier};
use authdb_crypto::signer::SchemeKind;
use authdb_net::{QsClient, QsServer, QsServerOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: i64 = 2_048;
const KEY_STRIDE: i64 = 10;
const SHARDS: i64 = 4;
/// Pipelined requests in flight per connection.
const DEPTH: usize = 16;
/// Batches per connection per scenario.
const BATCHES: usize = 16;
/// Query width in keys (~1–2 records per answer): point-lookup-sized
/// answers keep proof construction small so the measurement exposes the
/// per-exchange transport overhead that pipelining amortizes.
const WIDTH: i64 = KEY_STRIDE;
/// One-way delay of the simulated client link.
const LINK_DELAY: Duration = Duration::from_millis(1);
const CONNS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn mock_cfg() -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        // Summaries out of frame: the subject is transport concurrency.
        rho: 1_000_000,
        rho_prime: 1_000_000,
        buffer_pages: 4096,
        fill: 2.0 / 3.0,
    }
}

fn system() -> (ShardedAggregator, QsServer, Verifier, EpochView) {
    let span = N * KEY_STRIDE;
    let splits: Vec<i64> = (1..SHARDS).map(|i| i * span / SHARDS).collect();
    let mut rng = StdRng::seed_from_u64(42);
    let mut sa = ShardedAggregator::new(mock_cfg(), splits, &mut rng);
    let boots = sa.bootstrap(
        (0..N).map(|i| vec![i * KEY_STRIDE, i]).collect(),
        env_jobs(),
    );
    let sqs = ShardedQueryServer::from_bootstraps(
        sa.public_params(),
        sa.config(),
        sa.map().clone(),
        &boots,
        &QsOptions::default(),
    );
    let verifier = Verifier::new(sa.public_params(), sa.config().schema, sa.config().rho);
    let server = QsServer::spawn(sqs, QsServerOptions::default()).expect("bind loopback");
    let view = EpochView::genesis(sa.map(), &sa.public_params()).expect("genesis view");
    (sa, server, verifier, view)
}

/// A full-duplex byte relay that delivers every read chunk after a fixed
/// one-way delay — the bench's stand-in for a client access link. Unlike
/// the lock-step `ChaosProxy` (built to attack one frame at a time), this
/// relay never re-frames: a pipelined batch written in one burst crosses
/// the link as one delayed chunk, exactly like bytes on a wire.
struct LinkSim {
    addr: SocketAddr,
}

impl LinkSim {
    fn spawn(upstream: SocketAddr, delay: Duration) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        std::thread::spawn(move || {
            for client in listener.incoming().flatten() {
                let Ok(server) = TcpStream::connect(upstream) else {
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                std::thread::spawn(move || pump(client, server, delay));
                std::thread::spawn(move || pump(s2, c2, delay));
            }
        });
        Ok(LinkSim { addr })
    }
}

/// Relay one direction, sleeping the link delay before delivering each
/// chunk. Exits (propagating the close) when either side goes away.
fn pump(mut from: TcpStream, mut to: TcpStream, delay: Duration) {
    let mut buf = [0u8; 64 << 10];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => {
                std::thread::sleep(delay);
                if to.write_all(&buf[..n]).is_err() {
                    let _ = from.shutdown(Shutdown::Read);
                    return;
                }
            }
        }
    }
}

fn random_ranges(rng: &mut StdRng, k: usize) -> Vec<(i64, i64)> {
    let span = N * KEY_STRIDE;
    (0..k)
        .map(|_| {
            let lo = rng.gen_range(0..span - WIDTH);
            (lo, lo + WIDTH - 1)
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

struct Measure {
    qps: f64,
    /// p99 round-trip of one in-flight window (the sojourn bound every
    /// query in the window experiences).
    p99: f64,
}

/// `conns` connections, each keeping a DEPTH-deep pipelined window in
/// flight for BATCHES rounds. Returns aggregate qps and p99 window RTT.
fn pipelined(addr: SocketAddr, conns: usize) -> Measure {
    let lats: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let t = Instant::now();
    std::thread::scope(|s| {
        for c in 0..conns {
            let lats = &lats;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + c as u64);
                let mut client = QsClient::connect(addr).expect("connect");
                let mut local = Vec::with_capacity(BATCHES);
                for _ in 0..BATCHES {
                    let ranges = random_ranges(&mut rng, DEPTH);
                    let t = Instant::now();
                    let batch = client.pipeline_select(&ranges).expect("pipelined batch");
                    local.push(t.elapsed().as_secs_f64());
                    for slot in &batch {
                        slot.as_ref().expect("within queue budget: no sheds");
                    }
                }
                lats.lock().unwrap().extend(local);
            });
        }
    });
    let wall = t.elapsed().as_secs_f64();
    let mut lats = lats.into_inner().unwrap();
    lats.sort_by(f64::total_cmp);
    Measure {
        qps: (conns * BATCHES * DEPTH) as f64 / wall,
        p99: percentile(&lats, 0.99),
    }
}

/// The pre-refactor discipline: one connection, one outstanding request.
fn serialized(addr: SocketAddr) -> Measure {
    let mut rng = StdRng::seed_from_u64(7);
    let mut client = QsClient::connect(addr).expect("connect");
    let queries = BATCHES * DEPTH;
    let mut lats = Vec::with_capacity(queries);
    let t = Instant::now();
    for &(lo, hi) in &random_ranges(&mut rng, queries) {
        let q = Instant::now();
        client.select_range(lo, hi).expect("answer");
        lats.push(q.elapsed().as_secs_f64());
    }
    let wall = t.elapsed().as_secs_f64();
    lats.sort_by(f64::total_cmp);
    Measure {
        qps: queries as f64 / wall,
        p99: percentile(&lats, 0.99),
    }
}

/// Run `pipelined` while a certified insert stream flows through the
/// server handle.
fn pipelined_with_updates(
    addr: SocketAddr,
    conns: usize,
    sa: &mut ShardedAggregator,
    server: &QsServer,
) -> Measure {
    let stop = AtomicBool::new(false);
    let stop_ref = &stop;
    std::thread::scope(|s| {
        let updater = s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut applied = 0u64;
            while !stop_ref.load(Ordering::Relaxed) {
                let key = rng.gen_range(0..N * KEY_STRIDE);
                let (shard, msgs) = sa.insert(vec![key, -1]);
                server.with_server(|sqs| {
                    for m in &msgs {
                        sqs.apply(shard, m);
                    }
                });
                applied += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
            applied
        });
        let m = pipelined(addr, conns);
        stop.store(true, Ordering::Relaxed);
        let applied = updater.join().expect("updater");
        assert!(applied > 0, "the update stream must actually run");
        m
    })
}

fn main() {
    banner(
        "fig_conc",
        "Event-loop QS: aggregate qps & p99 vs concurrent pipelined connections",
    );
    println!(
        "N = {N} Mock records, {SHARDS} shards, window depth {DEPTH}, \
         {BATCHES} windows/connection, ~1 record/answer, link delay {:?} one-way",
        LINK_DELAY
    );

    let (mut sa, server, verifier, view) = system();
    let direct = server.addr();
    let link = LinkSim::spawn(direct, LINK_DELAY).expect("bind link relay");

    // Sanity: a pipelined answer over the simulated link is a real,
    // verifying answer.
    {
        let mut rng = StdRng::seed_from_u64(3);
        let mut client = QsClient::connect(link.addr).expect("connect via link");
        let batch = client.pipeline_select(&[(0, 990)]).expect("batch");
        let ans = batch[0].as_ref().expect("answer");
        verifier
            .verify_sharded_selection(0, 990, ans, &view, sa.now(), true, &mut rng)
            .expect("pipelined answer verifies");
    }

    println!(
        "\n{:>8} | {:>8} | {:>8} | {:>10} | {:>12} | {:>8}",
        "link", "updates", "conns", "qps", "p99 window", "vs base"
    );
    println!(
        "{:->8}-+-{:->8}-+-{:->8}-+-{:->10}-+-{:->12}-+-{:->8}",
        "", "", "", "", "", ""
    );

    let mut csv_rows: Vec<String> = Vec::new();
    let mut speedup_at_16 = 0.0f64;
    for (transport, addr) in [("loopback", direct), ("1ms-link", link.addr)] {
        let base = serialized(addr);
        println!(
            "{:>8} | {:>8} | {:>8} | {:>10.0} | {:>12} | {:>8}",
            transport,
            "no",
            "serial",
            base.qps,
            fmt_time(base.p99),
            "1.00x"
        );
        csv_rows.push(format!("qps_serial_{transport},{}", base.qps));
        csv_rows.push(format!("p99_s_serial_{transport},{}", base.p99));
        for with_updates in [false, true] {
            for &conns in &CONNS {
                let m = if with_updates {
                    pipelined_with_updates(addr, conns, &mut sa, &server)
                } else {
                    pipelined(addr, conns)
                };
                let label = if with_updates { "yes" } else { "no" };
                println!(
                    "{:>8} | {:>8} | {:>8} | {:>10.0} | {:>12} | {:>7.2}x",
                    transport,
                    label,
                    conns,
                    m.qps,
                    fmt_time(m.p99),
                    m.qps / base.qps
                );
                csv_rows.push(format!(
                    "qps_{transport}_{conns}_conns_updates_{label},{}",
                    m.qps
                ));
                csv_rows.push(format!(
                    "p99_s_{transport}_{conns}_conns_updates_{label},{}",
                    m.p99
                ));
                if transport == "1ms-link" && !with_updates && conns == 16 {
                    speedup_at_16 = m.qps / base.qps;
                }
            }
        }
    }
    server.shutdown();

    csv_begin("metric,value");
    for row in &csv_rows {
        println!("{row}");
    }
    println!("qps_speedup_at_16_conns_1ms_link,{speedup_at_16}");
    csv_end();

    assert!(
        speedup_at_16 >= 4.0,
        "16 pipelined connections over the client link must deliver >= 4x \
         the serialized baseline (got {speedup_at_16:.2}x)"
    );
    println!(
        "\nAggregate speedup at 16 connections over the 1 ms client link: \
         {speedup_at_16:.2}x the serialized baseline (bar: 4x)."
    );
}
