//! Figure 9: EMB− versus BAS under range queries (sf = 10⁻³).
//!
//! Same protocol as Figure 7 with 1000-record result sets: the EMB−
//! saturation point collapses (the paper reports ~10 jobs/s versus BAS
//! sustaining > 45 jobs/s).

use authdb_bench::{banner, csv_begin, csv_end};
use authdb_sim::models::{run_load, System};
use authdb_sim::{CostModel, SystemModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Figure 9",
        "EMB- vs BAS, range queries (sf = 1e-3, 1000 records), Upd% = 10",
    );
    let sys = SystemModel::paper_defaults();
    let cost = CostModel::pinned();
    let duration = if authdb_bench::full_scale() {
        120.0
    } else {
        40.0
    };
    let rates = [2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0];

    println!(
        "\n{:>6} | {:>12} {:>12} | {:>12} {:>12}",
        "rate", "EMB- Q", "EMB- U", "BAS Q", "BAS U"
    );
    println!("{:->6}-+-{:->25}-+-{:->25}", "", "", "");
    csv_begin("rate,emb_q_ms,emb_u_ms,bas_q_ms,bas_u_ms");
    let mut emb_saturation: Option<f64> = None;
    let mut bas_at_max = 0.0;
    for &rate in &rates {
        let mut rng = StdRng::seed_from_u64(rate as u64 + 11);
        let emb = run_load(
            System::Emb,
            rate,
            10.0,
            1000,
            duration,
            &sys,
            &cost,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(rate as u64 + 11);
        let bas = run_load(
            System::Bas,
            rate,
            10.0,
            1000,
            duration,
            &sys,
            &cost,
            &mut rng,
        );
        println!(
            "{rate:>6.0} | {:>10.1}ms {:>10.1}ms | {:>10.1}ms {:>10.1}ms",
            emb.query.mean_response * 1e3,
            emb.update.mean_response * 1e3,
            bas.query.mean_response * 1e3,
            bas.update.mean_response * 1e3,
        );
        println!(
            "{rate},{},{},{},{}",
            emb.query.mean_response * 1e3,
            emb.update.mean_response * 1e3,
            bas.query.mean_response * 1e3,
            bas.update.mean_response * 1e3,
        );
        if emb_saturation.is_none() && emb.query.mean_response > 1.0 {
            emb_saturation = Some(rate);
        }
        bas_at_max = bas.query.mean_response;
    }
    csv_end();

    let sat = emb_saturation.unwrap_or(f64::INFINITY);
    println!(
        "\nEMB- response exceeds 1 s at ~{sat} jobs/s; BAS at {} jobs/s still {:.0} ms.",
        rates[rates.len() - 1],
        bas_at_max * 1e3
    );
    assert!(
        sat <= rates[rates.len() - 1],
        "EMB- must saturate within the sweep"
    );
    assert!(
        bas_at_max < 2.0,
        "BAS must stay responsive at the highest tested rate"
    );
    println!("Paper shape: EMB- saturates at ~10 jobs/s; BAS pushed beyond 45 jobs/s.");
}
