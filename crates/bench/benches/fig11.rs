//! Figure 11: Primary-Key/Foreign-Key Equi-Join — BV vs BF VO sizes.
//!
//! TPC-E-like tables (`Security` as R: I_A = 6,850; `Holding` subset as S:
//! I_B = 3,425 distinct values), real join execution and verification:
//! (a) VO size vs match ratio α; (b) vs filter bits per value m/I_B;
//! (c) vs partition size I_B/p, plus the filter-rebuild cost; (d) vs
//! selection selectivity on R. Sizes are reported in the paper's accounting
//! (values + filter bytes; `|S.B|` = 4) alongside formulas 2 and 3.

use std::time::Instant;

use authdb_bench::{banner, csv_begin, csv_end, full_scale};
use authdb_core::da::{DaConfig, DataAggregator, SigningMode};
use authdb_core::join::{
    execute_join, partition_certification_message, verify_join, viability, JoinMethod,
};
use authdb_core::qs::QueryServer;
use authdb_core::record::Schema;
use authdb_core::verify::Verifier;
use authdb_crypto::signer::SchemeKind;
use authdb_filters::partitioned::PartitionedFilters;
use authdb_workload::tpce;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct JoinBed {
    schema: Schema,
    s_da: DataAggregator,
    s_qs: QueryServer,
    s_verifier: Verifier,
    b_values: Vec<i64>,
}

fn build_s(i_b: usize, n_s: usize) -> JoinBed {
    let schema = Schema::new(2, 32);
    let mut rng = StdRng::seed_from_u64(11);
    let cfg = DaConfig {
        schema,
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        rho: 1,
        rho_prime: 1_000_000,
        buffer_pages: 32768,
        fill: 2.0 / 3.0,
    };
    let mut s_da = DataAggregator::new(cfg, &mut rng);
    let s_boot = s_da.bootstrap(tpce::s_rows(n_s, i_b), 4);
    let s_qs = QueryServer::from_bootstrap(
        s_da.public_params(),
        schema,
        SigningMode::Chained,
        &s_boot,
        32768,
        2.0 / 3.0,
    );
    let s_verifier = Verifier::new(s_da.public_params(), schema, 1);
    JoinBed {
        schema,
        s_da,
        s_qs,
        s_verifier,
        b_values: tpce::b_domain(i_b),
    }
}

struct RSide {
    qs: QueryServer,
    verifier: Verifier,
    n_r: usize,
}

fn build_r(n_r: usize, i_b: usize, alpha: f64) -> RSide {
    let schema = Schema::new(2, 32);
    let mut rng = StdRng::seed_from_u64(13);
    let cfg = DaConfig {
        schema,
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        rho: 1,
        rho_prime: 1_000_000,
        buffer_pages: 8192,
        fill: 2.0 / 3.0,
    };
    let mut da = DataAggregator::new(cfg, &mut rng);
    let boot = da.bootstrap(tpce::r_rows(n_r, i_b, alpha, &mut rng), 4);
    let qs = QueryServer::from_bootstrap(
        da.public_params(),
        schema,
        SigningMode::Chained,
        &boot,
        8192,
        2.0 / 3.0,
    );
    let verifier = Verifier::new(da.public_params(), schema, 1);
    RSide { qs, verifier, n_r }
}

/// Execute + verify one join; returns (bv_bytes, bf_bytes) paper accounting.
fn one_join(
    bed: &mut JoinBed,
    r: &mut RSide,
    selectivity: f64,
    values_per_partition: usize,
    bits_per_key: f64,
) -> (usize, usize) {
    let filters = PartitionedFilters::build(&bed.b_values, values_per_partition, bits_per_key);
    let sigs: Vec<_> = (0..filters.partition_count())
        .map(|i| bed.s_da.sign_raw(&filters.certification_message(i)))
        .collect();
    let hi = (r.n_r as f64 * selectivity) as i64 - 1;
    let mut sizes = [0usize; 2];
    for (i, method) in [JoinMethod::BoundaryValues, JoinMethod::BloomFilter]
        .into_iter()
        .enumerate()
    {
        let r_ans = r.qs.select_range(0, hi).unwrap();
        let ans = execute_join(r_ans, 1, &mut bed.s_qs, &filters, &sigs, method);
        verify_join(
            &r.verifier,
            bed.s_verifier.public_params(),
            &bed.schema,
            partition_certification_message,
            0,
            hi,
            &ans,
        )
        .expect("join verifies");
        sizes[i] = ans.paper_vo_size(&bed.schema, 4);
    }
    (sizes[0], sizes[1])
}

fn main() {
    banner(
        "Figure 11",
        "PK-FK equi-join VO sizes: BV vs BF (TPC-E-like)",
    );
    let scale = if full_scale() { 1 } else { 5 };
    let n_s = tpce::N_S / scale;
    let i_b = tpce::I_B;
    let n_r = tpce::N_R;
    println!(
        "R: {n_r} records / {} distinct A; S: {n_s} records / {i_b} distinct B",
        tpce::I_A
    );
    println!("Building S ({n_s} records)...");
    let mut bed = build_s(i_b, n_s);

    // ---- (a) match ratio sweep ----
    println!("\n(a) VO size vs alpha (selectivity 20%, m/I_B = 8, I_B/p = 4):");
    println!(
        "{:>6} | {:>10} | {:>10} | {:>8} | {:>10} | {:>10}",
        "alpha", "BV", "BF", "BF/BV", "BV (f.2)", "BF (f.3)"
    );
    csv_begin("alpha,bv_bytes,bf_bytes,bv_formula,bf_formula");
    for alpha in [0.05, 0.2, 0.4, 0.6, 0.8, 0.95] {
        let mut r = build_r(n_r, i_b, alpha);
        let (bv, bf) = one_join(&mut bed, &mut r, 0.2, 4, 8.0);
        let sel_ia = n_r as f64 * 0.2;
        let f_bv = viability::vo_bv(alpha, sel_ia, i_b as f64, 4.0);
        let f_bf = viability::vo_bf(alpha, sel_ia, i_b as f64, i_b as f64 / 4.0, 8.0, 4.0);
        println!(
            "{alpha:>6.2} | {bv:>10} | {bf:>10} | {:>7.2}x | {f_bv:>10.0} | {f_bf:>10.0}",
            bf as f64 / bv as f64
        );
        println!("{alpha},{bv},{bf},{f_bv:.0},{f_bf:.0}");
        if alpha <= 0.6 {
            assert!(bf < bv, "BF must beat BV at alpha={alpha}: bf={bf} bv={bv}");
        }
    }
    csv_end();

    // ---- (b) bits-per-value sweep ----
    println!("\n(b) VO size vs m/I_B (alpha = 0.5):");
    println!("{:>6} | {:>10} | {:>10}", "m/I_B", "BV", "BF");
    csv_begin("bits_per_key,bv_bytes,bf_bytes");
    let mut r = build_r(n_r, i_b, 0.5);
    for m in [4.0, 6.0, 8.0, 10.0, 12.0, 16.0] {
        let (bv, bf) = one_join(&mut bed, &mut r, 0.2, 4, m);
        println!("{m:>6.0} | {bv:>10} | {bf:>10}");
        println!("{m},{bv},{bf}");
        // The paper: "a range between 8 and 12 for m/IB is adequate"; the
        // gain "eventually reverses" as filters grow, so only assert the
        // adequate band.
        if (8.0..=12.0).contains(&m) {
            assert!(bf < bv, "BF must beat BV at m/I_B = {m}");
        }
    }
    csv_end();

    // ---- (c) partition size sweep + rebuild cost ----
    println!("\n(c) VO size & filter-rebuild cost vs I_B/p (alpha = 0.5, m/I_B = 8):");
    println!(
        "{:>7} | {:>10} | {:>10} | {:>14}",
        "I_B/p", "BV", "BF", "rebuild time"
    );
    csv_begin("values_per_partition,bv_bytes,bf_bytes,rebuild_us");
    for vpp in [2usize, 8, 32, 128, 512, 2048] {
        let (bv, bf) = one_join(&mut bed, &mut r, 0.2, vpp, 8.0);
        // Rebuild cost: re-hash one partition's values (the deletion path).
        let mut filters = PartitionedFilters::build(&bed.b_values, vpp, 8.0);
        let idx = filters.partition_count() / 2;
        let p = filters.partition(idx).clone();
        let content: Vec<i64> = bed
            .b_values
            .iter()
            .copied()
            .filter(|v| p.covers(*v))
            .collect();
        let t = Instant::now();
        let reps = 50;
        for _ in 0..reps {
            filters.rebuild_partition(idx, &content);
        }
        let rebuild = t.elapsed().as_secs_f64() / reps as f64;
        println!(
            "{vpp:>7} | {bv:>10} | {bf:>10} | {:>11.1} µs",
            rebuild * 1e6
        );
        println!("{vpp},{bv},{bf},{:.1}", rebuild * 1e6);
    }
    csv_end();
    println!("(rebuild cost grows with partition size — the paper's dashed line)");

    // ---- (d) selectivity sweep ----
    println!("\n(d) VO size vs selectivity on R (alpha = 0.5):");
    println!(
        "{:>6} | {:>10} | {:>10} | {:>8}",
        "sel%", "BV", "BF", "saved"
    );
    csv_begin("selectivity,bv_bytes,bf_bytes");
    for sel in [0.005, 0.05, 0.2, 0.5, 0.95] {
        let (bv, bf) = one_join(&mut bed, &mut r, sel, 4, 8.0);
        println!(
            "{:>6.1} | {bv:>10} | {bf:>10} | {:>7.0}%",
            sel * 100.0,
            (1.0 - bf as f64 / bv as f64) * 100.0
        );
        println!("{sel},{bv},{bf}");
        assert!(bf <= bv, "BF must not exceed BV at selectivity {sel}");
    }
    csv_end();
    println!("\nPaper shape: BF ~45-75% smaller than BV, growing with selectivity.");
}
