//! Figure 6: Reduction in VO Construction Cost from SigCache.
//!
//! Runs the Section 4.1 analysis at N = 2^20 (~1M records) for the paper's
//! two query-cardinality distributions — truncated harmonic ("skewed") and
//! uniform — and reports expected per-query aggregation cost versus the
//! number of cached signature pairs, converted to time with the measured
//! ECC-addition cost. Also prints the chosen nodes against the paper's
//! published pick lists.

use authdb_bench::{banner, csv_begin, csv_end, fmt_time, timed};
use authdb_core::sigcache::{distributions, select_cache, NodeId, SigTreeAnalysis};
use authdb_sim::CostModel;

fn run(label: &str, probs: Vec<f64>, ecc_add: f64, paper_picks: &[(usize, usize)]) {
    let n = probs.len();
    let (analysis, t_a) = timed(|| SigTreeAnalysis::new(&probs));
    let (sel, t_s) = timed(|| select_cache(&analysis, 64));
    println!(
        "\n[{label}] N = {n}: analysis {}, selection {}",
        fmt_time(t_a),
        fmt_time(t_s)
    );
    println!(
        "Base (uncached) expected cost: {:.1} aggregation ops = {}",
        sel.base_cost,
        fmt_time(sel.base_cost * ecc_add)
    );
    println!(
        "\n{:>6} | {:>14} | {:>12} | {:>9}",
        "pairs", "ops/query", "time/query", "saved"
    );
    println!("{:->6}-+-{:->14}-+-{:->12}-+-{:->9}", "", "", "", "");
    csv_begin("pairs,ops,seconds,saved_fraction");
    // Nodes come out in utility order; mirror nodes pair up.
    for pairs in 0..=20usize.min(sel.cost_curve.len() / 2) {
        let nodes = pairs * 2;
        let cost = if nodes == 0 {
            sel.base_cost
        } else {
            sel.cost_curve[nodes - 1]
        };
        let saved = 1.0 - cost / sel.base_cost;
        println!(
            "{pairs:>6} | {cost:>14.1} | {:>12} | {:>8.1}%",
            fmt_time(cost * ecc_add),
            saved * 100.0
        );
        println!("{pairs},{cost},{},{saved}", cost * ecc_add);
    }
    csv_end();

    let eight_pair_cost = sel.cost_curve.get(15).copied().unwrap_or(sel.base_cost);
    let reduction = 1.0 - eight_pair_cost / sel.base_cost;
    println!(
        "Reduction with 8 cached pairs: {:.0}% (paper: 57% skewed / 75% uniform)",
        reduction * 100.0
    );

    println!("\nFirst chosen nodes (level, j):");
    for chunk in sel.chosen.chunks(4).take(4) {
        let s: Vec<String> = chunk
            .iter()
            .map(|c| format!("T{},{}", c.level, c.j))
            .collect();
        println!("  {}", s.join("  "));
    }
    let missing: Vec<&(usize, usize)> = paper_picks
        .iter()
        .filter(|(l, j)| {
            !sel.chosen
                .iter()
                .take(24)
                .any(|c| c == &NodeId { level: *l, j: *j })
        })
        .collect();
    println!(
        "Paper's published picks present among our first 24: {}/{}{}",
        paper_picks.len() - missing.len(),
        paper_picks.len(),
        if missing.is_empty() {
            String::new()
        } else {
            format!(" (missing: {missing:?})")
        }
    );
}

fn main() {
    banner(
        "Figure 6",
        "Reduction in VO construction cost vs cached signature pairs",
    );
    let n = 1usize << 20; // the paper's one-million-record dataset
    let ecc_add = CostModel::measure().ecc_add;
    println!(
        "Measured ECC addition (aggregation) cost: {}",
        fmt_time(ecc_add)
    );

    // The paper's published pick lists for N = 2^20 (Section 4.1).
    let skewed_picks = [
        (18, 1),
        (18, 2),
        (17, 1),
        (17, 6),
        (16, 1),
        (16, 14),
        (15, 1),
        (15, 30),
        (15, 5),
        (15, 26),
        (14, 1),
        (14, 62),
        (14, 5),
        (14, 58),
        (13, 1),
        (13, 126),
    ];
    let uniform_picks = [
        (18, 1),
        (18, 2),
        (17, 1),
        (17, 6),
        (16, 1),
        (16, 14),
        (15, 1),
        (15, 30),
        (15, 5),
        (15, 26),
        (14, 1),
        (14, 62),
        (14, 5),
        (14, 58),
        (14, 9),
        (14, 54),
    ];

    run(
        "skewed P(q) ∝ 1/q",
        distributions::harmonic(n),
        ecc_add,
        &skewed_picks,
    );
    run(
        "uniform P(q) = 1/N",
        distributions::uniform(n),
        ecc_add,
        &uniform_picks,
    );
}
