//! fig_net: the networked query server over loopback TCP.
//!
//! The paper's deployment is an outsourced publisher answering clients over
//! a network; this bench drives the real stack — DA → wire-encoded updates
//! → TCP `QsServer` → `QsClient` → the unmodified stitched verifier — and
//! measures what the DES models only predict:
//!
//! * **round-trip latency** per selection answer (request framing, server
//!   proof construction, response framing, decode), at 1 and 8 shards,
//!   with and without attached freshness summaries;
//! * **bytes on the wire** per answer, checked against the `crates/sim`
//!   cost-model message sizes (`wire_model`): the acceptance bar is
//!   agreement within 20% for every measured answer, so a codec change
//!   that drifts from the simulator's accounting fails here instead of
//!   silently skewing Figures 7/9.
//!
//! Companion to `fig_shard` (same N, key stride, and seam-straddling query
//! set) so the network numbers line up with the in-process ones.

use std::time::Instant;

use authdb_bench::{banner, csv_begin, csv_end, env_jobs, fmt_time};
use authdb_core::da::DaConfig;
use authdb_core::da::SigningMode;
use authdb_core::qs::{QsOptions, SelectionAnswer};
use authdb_core::record::Schema;
use authdb_core::shard::{ShardedAggregator, ShardedQueryServer, ShardedSelectionAnswer};
use authdb_core::verify::{EpochView, Verifier};
use authdb_crypto::signer::SchemeKind;
use authdb_net::{QsClient, QsServer, QsServerOptions};
use authdb_sim::cost::wire_model;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: i64 = 2_048;
const KEY_STRIDE: i64 = 10;
const NUM_ATTRS: usize = 2;
/// Compressed BAS signature bytes (the codec adds its one-byte scheme tag).
const SIG_LEN: usize = 33;

fn bas_cfg() -> DaConfig {
    DaConfig {
        schema: Schema::new(NUM_ATTRS, 64),
        scheme: SchemeKind::Bas,
        mode: SigningMode::Chained,
        rho: 10,
        rho_prime: 100_000,
        buffer_pages: 4096,
        fill: 2.0 / 3.0,
    }
}

/// The fig_shard query set: seam-straddling selections plus one mid-shard.
fn queries() -> Vec<(i64, i64)> {
    let span = N * KEY_STRIDE;
    let mut out: Vec<(i64, i64)> = (1..=7)
        .map(|q| {
            let seam = q * span / 8;
            (seam - 64 * KEY_STRIDE, seam + 64 * KEY_STRIDE - 1)
        })
        .collect();
    out.push((span / 16, span / 16 + 128 * KEY_STRIDE - 1));
    out
}

fn sharded_system(shards: i64) -> (ShardedAggregator, ShardedQueryServer, Verifier) {
    let span = N * KEY_STRIDE;
    let splits: Vec<i64> = (1..shards).map(|i| i * span / shards).collect();
    let mut rng = StdRng::seed_from_u64(42);
    let mut sa = ShardedAggregator::new(bas_cfg(), splits, &mut rng);
    let boots = sa.bootstrap(
        (0..N).map(|i| vec![i * KEY_STRIDE, i]).collect(),
        env_jobs(),
    );
    let sqs = ShardedQueryServer::from_bootstraps(
        sa.public_params(),
        sa.config(),
        sa.map().clone(),
        &boots,
        &QsOptions::default(),
    );
    let v = Verifier::new(sa.public_params(), sa.config().schema, sa.config().rho);
    (sa, sqs, v)
}

/// The sim cost model's prediction for an answer's bytes-on-wire, built
/// from what the answer actually carried.
fn predicted_bytes(ans: &ShardedSelectionAnswer) -> usize {
    let shape = |a: &SelectionAnswer| wire_model::AnswerShape {
        records: a.records.len(),
        gap: a.gap.is_some(),
        vacancy: a.vacancy.is_some(),
        summaries: a.summaries.len(),
        summary_bitmap_bytes: a.summaries.iter().map(|s| s.compressed.len()).sum(),
    };
    let parts: Vec<wire_model::AnswerShape> = ans.parts.iter().map(|p| shape(&p.answer)).collect();
    wire_model::sharded_selection_response(ans.map.splits().len(), &parts, NUM_ATTRS, SIG_LEN)
}

struct Phase {
    rtt_per_query: f64,
    verify_per_query: f64,
    bytes_per_answer: f64,
    predicted_per_answer: f64,
    max_drift: f64,
    records: usize,
}

/// Run the query set against a live server: round-trip timing, per-answer
/// bytes vs the cost model, and full stitched verification at `now`.
fn run_phase(
    client: &mut QsClient,
    verifier: &Verifier,
    view: &EpochView,
    now: u64,
    rng: &mut StdRng,
) -> Phase {
    let qs_list = queries();
    let reps = 5;
    // Timed round trips (decode included, verification excluded).
    let t = Instant::now();
    let mut answers = Vec::new();
    for _ in 0..reps {
        answers = qs_list
            .iter()
            .map(|&(lo, hi)| client.select_range(lo, hi).expect("network answer"))
            .collect();
    }
    let rtt = t.elapsed().as_secs_f64() / (reps * qs_list.len()) as f64;

    // Bytes-on-wire per answer vs the sim model.
    let mut measured_total = 0usize;
    let mut predicted_total = 0usize;
    let mut max_drift: f64 = 0.0;
    let mut records = 0usize;
    for (&(lo, hi), ans) in qs_list.iter().zip(&answers) {
        let ans2 = client.select_range(lo, hi).expect("network answer");
        let measured = client.last_response_bytes();
        let predicted = predicted_bytes(&ans2);
        assert_eq!(&ans2, ans, "deterministic answers");
        let drift = (measured as f64 - predicted as f64).abs() / measured as f64;
        max_drift = max_drift.max(drift);
        measured_total += measured;
        predicted_total += predicted;
        records += ans
            .parts
            .iter()
            .map(|p| p.answer.records.len())
            .sum::<usize>();
    }

    let t = Instant::now();
    for (&(lo, hi), ans) in qs_list.iter().zip(&answers) {
        verifier
            .verify_sharded_selection(lo, hi, ans, view, now, true, rng)
            .expect("honest network answer verifies");
    }
    let verify = t.elapsed().as_secs_f64() / qs_list.len() as f64;

    Phase {
        rtt_per_query: rtt,
        verify_per_query: verify,
        bytes_per_answer: measured_total as f64 / qs_list.len() as f64,
        predicted_per_answer: predicted_total as f64 / qs_list.len() as f64,
        max_drift,
        records: records / qs_list.len(),
    }
}

fn main() {
    banner(
        "fig_net",
        "Networked QS over loopback TCP: latency, bytes/answer, cost-model agreement",
    );
    println!(
        "N = {N} BAS records, {} seam-straddling queries, ~128 records/answer",
        queries().len()
    );
    println!(
        "{:>6} | {:>9} | {:>12} | {:>12} | {:>13} | {:>13} | {:>9}",
        "shards", "summaries", "rtt/query", "verify/query", "bytes/answer", "model bytes", "drift"
    );
    println!(
        "{:->6}-+-{:->9}-+-{:->12}-+-{:->12}-+-{:->13}-+-{:->13}-+-{:->9}",
        "", "", "", "", "", "", ""
    );

    let mut rng = StdRng::seed_from_u64(77);
    let mut csv_rows: Vec<String> = Vec::new();
    let mut worst_drift: f64 = 0.0;
    for &shards in &[1i64, 8] {
        let (mut sa, sqs, verifier) = sharded_system(shards);
        let view = EpochView::genesis(sa.map(), &sa.public_params()).expect("genesis view");
        let server = QsServer::spawn(sqs, QsServerOptions::default()).expect("bind loopback");
        let mut client = QsClient::connect(server.addr()).expect("connect");

        // Phase 1: before any summary is published (freshness trivially
        // inside the first 2ρ window) — the pure proof payload.
        let bare = run_phase(&mut client, &verifier, &view, 0, &mut rng);

        // Phase 2: the DA publishes two summary periods and the answers
        // carry the freshness stream.
        for dt in [12, 10] {
            sa.advance_clock(dt);
            for (shard, summary, recerts) in sa.maybe_publish_summaries() {
                server.with_server(|sqs| {
                    sqs.add_summary(shard, summary);
                    for m in &recerts {
                        sqs.apply(shard, m);
                    }
                });
            }
        }
        let with_sums = run_phase(&mut client, &verifier, &view, sa.now(), &mut rng);

        for (label, phase) in [("no", &bare), ("yes", &with_sums)] {
            println!(
                "{:>6} | {:>9} | {:>12} | {:>12} | {:>13.0} | {:>13.0} | {:>8.2}%",
                shards,
                label,
                fmt_time(phase.rtt_per_query),
                fmt_time(phase.verify_per_query),
                phase.bytes_per_answer,
                phase.predicted_per_answer,
                phase.max_drift * 100.0
            );
            csv_rows.push(format!(
                "rtt_s_{shards}_shards_summaries_{label},{}",
                phase.rtt_per_query
            ));
            csv_rows.push(format!(
                "verify_s_{shards}_shards_summaries_{label},{}",
                phase.verify_per_query
            ));
            csv_rows.push(format!(
                "bytes_per_answer_{shards}_shards_summaries_{label},{}",
                phase.bytes_per_answer
            ));
            csv_rows.push(format!(
                "model_bytes_per_answer_{shards}_shards_summaries_{label},{}",
                phase.predicted_per_answer
            ));
            csv_rows.push(format!(
                "model_drift_{shards}_shards_summaries_{label},{}",
                phase.max_drift
            ));
            worst_drift = worst_drift.max(phase.max_drift);
            assert!(phase.records > 0, "queries must return records");
        }
        server.shutdown();
    }

    csv_begin("metric,value");
    for row in &csv_rows {
        println!("{row}");
    }
    println!("model_worst_drift,{worst_drift}");
    csv_end();

    assert!(
        worst_drift <= 0.20,
        "measured bytes-on-wire must agree with the sim cost model within \
         20% (worst drift {:.1}%) — recalibrate crates/sim cost.rs wire_model",
        worst_drift * 100.0
    );
    println!(
        "\nCost-model agreement: worst drift {:.2}% (bar: 20%).",
        worst_drift * 100.0
    );
}
