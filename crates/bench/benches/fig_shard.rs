//! fig_shard: sharded fan-out, stitched verification, and the wired-in
//! aggregate-signature cache.
//!
//! Part 1 replays the cross-shard adversary catalog (seam splice, shard
//! withholding, seam widening, stale-shard replay, summary swap) against
//! `Verifier::verify_sharded_selection` — under the fast Mock scheme and
//! under real BAS crypto — asserting every strategy is rejected with its
//! pinned `VerifyError` while the honest fan-out verifies.
//!
//! Part 2 scales the shard count (1 / 2 / 4 / 8) over a fixed BAS relation
//! and measures answer latency (the fan-out) and client verification cost
//! (the stitched random-linear-combination fold). The acceptance bar:
//! stitched verification at 8 shards stays within 2x of single-shard
//! verification — one multi-Miller loop, not one per shard.
//!
//! Part 3 shows the Section 4.3 win of wiring `SigCache` into
//! `QueryServer::select_range`: wide selections against a cached vs an
//! uncached server, aggregation-op counts (the paper's ECC-addition cost
//! unit), hit/miss counters, and coherence across an update burst.

use std::time::Instant;

use authdb_bench::{banner, csv_begin, csv_end, env_jobs, fmt_time};
use authdb_core::adversary::{run_shard_catalog, ShardConformance};
use authdb_core::da::{DaConfig, DataAggregator, SigningMode};
use authdb_core::qs::{AggCacheConfig, CacheDistribution, QsOptions, QueryServer};
use authdb_core::record::Schema;
use authdb_core::shard::{ShardedAggregator, ShardedQueryServer};
use authdb_core::sigcache::RefreshStrategy;
use authdb_core::verify::{EpochView, Verifier};
use authdb_crypto::signer::SchemeKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: i64 = 2_048;
const KEY_STRIDE: i64 = 10;

fn print_catalog(label: &str, results: &[ShardConformance]) -> bool {
    println!("\nCross-shard tamper catalog under {label}:");
    println!(
        "{:<22} | {:>9} | {:<44} | {:>4}",
        "strategy", "honest ok", "tampered fan-out rejected with", "pass"
    );
    println!("{:-<22}-+-{:->9}-+-{:-<44}-+-{:->4}", "", "", "", "");
    let mut all_ok = true;
    for c in results {
        let rejection = match &c.outcome {
            Ok(_) => "ACCEPTED (seam soundness hole!)".to_string(),
            Err(e) => format!("{e:?}"),
        };
        let ok = c.ok();
        all_ok &= ok;
        println!(
            "{:<22} | {:>9} | {:<44} | {:>4}",
            c.tamper.name(),
            if c.honest_ok { "yes" } else { "NO" },
            rejection,
            if ok { "ok" } else { "FAIL" },
        );
    }
    all_ok
}

fn bas_cfg() -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Bas,
        mode: SigningMode::Chained,
        rho: 10,
        rho_prime: 100_000,
        buffer_pages: 4096,
        fill: 2.0 / 3.0,
    }
}

/// Seam-straddling queries (plus one mid-shard), fixed across shard counts.
fn queries() -> Vec<(i64, i64)> {
    let span = N * KEY_STRIDE;
    let mut out: Vec<(i64, i64)> = (1..=7)
        .map(|q| {
            let seam = q * span / 8;
            (seam - 64 * KEY_STRIDE, seam + 64 * KEY_STRIDE - 1)
        })
        .collect();
    out.push((span / 16, span / 16 + 128 * KEY_STRIDE - 1));
    out
}

/// Build a BAS sharded system with `shards` even key-range shards.
fn sharded_system(shards: i64) -> (ShardedAggregator, ShardedQueryServer, Verifier) {
    let span = N * KEY_STRIDE;
    let splits: Vec<i64> = (1..shards).map(|i| i * span / shards).collect();
    let mut rng = StdRng::seed_from_u64(42);
    let mut sa = ShardedAggregator::new(bas_cfg(), splits, &mut rng);
    let boots = sa.bootstrap(
        (0..N).map(|i| vec![i * KEY_STRIDE, i]).collect(),
        env_jobs(),
    );
    let sqs = ShardedQueryServer::from_bootstraps(
        sa.public_params(),
        sa.config(),
        sa.map().clone(),
        &boots,
        &QsOptions::default(),
    );
    let v = Verifier::new(sa.public_params(), sa.config().schema, sa.config().rho);
    (sa, sqs, v)
}

fn main() {
    banner(
        "fig_shard",
        "Sharded QS: seam-sound stitching, scaling, and the sigcache win",
    );

    // ---- Part 1: the cross-shard catalog ----
    let mock_ok = print_catalog("Mock (structural)", &run_shard_catalog(SchemeKind::Mock));
    let bas_ok = print_catalog("BAS (real BLS/BN254)", &run_shard_catalog(SchemeKind::Bas));

    // ---- Part 2: shard-count scaling ----
    println!("\nShard scaling: N = {N} BAS records, 8 seam-straddling queries");
    println!(
        "{:>6} | {:>14} | {:>14} | {:>12}",
        "shards", "answer (8q)", "verify (8q)", "vs 1 shard"
    );
    println!("{:->6}-+-{:->14}-+-{:->14}-+-{:->12}", "", "", "", "");
    let qs_list = queries();
    let reps = 5;
    let mut verify_by_count = Vec::new();
    let mut answer_by_count = Vec::new();
    for &shards in &[1i64, 2, 4, 8] {
        let (sa, sqs, v) = sharded_system(shards);
        let view = EpochView::genesis(sa.map(), &sa.public_params()).expect("genesis view");
        let mut rng = StdRng::seed_from_u64(9);

        let t = Instant::now();
        let mut answers = Vec::new();
        for _ in 0..reps {
            answers = qs_list
                .iter()
                .map(|&(lo, hi)| sqs.select_range(lo, hi).expect("chained mode"))
                .collect();
        }
        let answer = t.elapsed().as_secs_f64() / reps as f64;

        let t = Instant::now();
        for _ in 0..reps {
            for (&(lo, hi), ans) in qs_list.iter().zip(&answers) {
                v.verify_sharded_selection(lo, hi, ans, &view, 0, true, &mut rng)
                    .expect("honest fan-out verifies");
            }
        }
        let verify = t.elapsed().as_secs_f64() / reps as f64;
        let ratio = if verify_by_count.is_empty() {
            1.0
        } else {
            verify / verify_by_count[0]
        };
        println!(
            "{:>6} | {:>14} | {:>14} | {:>11.2}x",
            shards,
            fmt_time(answer),
            fmt_time(verify),
            ratio
        );
        answer_by_count.push(answer);
        verify_by_count.push(verify);
    }
    let scaling = verify_by_count[3] / verify_by_count[0];

    // ---- Part 3: the aggregate-signature cache in the hot path ----
    println!(
        "\nSigcache in select_range: N = {N} BAS records, 64 selections \
         drawn from the uniform cardinality model"
    );
    let mut rng = StdRng::seed_from_u64(77);
    let mut da = DataAggregator::new(bas_cfg(), &mut rng);
    let boot = da.bootstrap(
        (0..N).map(|i| vec![i * KEY_STRIDE, i]).collect(),
        env_jobs(),
    );
    let mut plain = QueryServer::from_bootstrap(
        da.public_params(),
        da.config().schema,
        SigningMode::Chained,
        &boot,
        4096,
        2.0 / 3.0,
    );
    let mut cached = QueryServer::with_options(
        da.public_params(),
        da.config().schema,
        SigningMode::Chained,
        &boot,
        QsOptions {
            buffer_pages: 4096,
            agg_cache: Some(AggCacheConfig {
                max_nodes: 255,
                strategy: RefreshStrategy::Eager,
                distribution: CacheDistribution::Uniform,
            }),
            ..QsOptions::default()
        },
    );
    // Queries drawn from the uniform cardinality model Algorithm 1 was
    // given (the paper's Figure 6 methodology): q ~ U[1, N] records
    // starting at a uniform position.
    use rand::Rng;
    let mut qrng = StdRng::seed_from_u64(4242);
    let wide: Vec<(i64, i64)> = (0..64)
        .map(|_| {
            let q = qrng.gen_range(1..=N);
            let a = qrng.gen_range(0..=(N - q));
            (a * KEY_STRIDE, (a + q) * KEY_STRIDE - 1)
        })
        .collect();
    let run = |server: &mut QueryServer| {
        let before = server.stats();
        let t = Instant::now();
        for &(lo, hi) in &wide {
            server.select_range(lo, hi).expect("chained mode");
        }
        let dt = t.elapsed().as_secs_f64();
        let after = server.stats();
        (dt, after.agg_ops - before.agg_ops)
    };
    let (plain_t, plain_ops) = run(&mut plain);
    let (cached_t, cached_ops) = run(&mut cached);
    println!(
        "  uncached: {} ({plain_ops} aggregation ops)",
        fmt_time(plain_t)
    );
    println!(
        "  cached  : {} ({cached_ops} aggregation ops)",
        fmt_time(cached_t)
    );
    let op_ratio = plain_ops as f64 / cached_ops.max(1) as f64;
    println!("  op reduction: {op_ratio:.1}x");
    // Coherence under churn: value updates flow deltas into the cache, and
    // answers keep matching the uncached replica.
    da.advance_clock(1);
    let mut update_msgs = 0usize;
    for rid in (0..N as u64).step_by(97) {
        for m in da.update_record(rid, vec![rid as i64 * KEY_STRIDE, -1]) {
            plain.apply(&m);
            cached.apply(&m);
            update_msgs += 1;
        }
    }
    let mut coherent = true;
    for &(lo, hi) in &wide {
        let a = plain.select_range(lo, hi).expect("chained mode");
        let b = cached.select_range(lo, hi).expect("chained mode");
        coherent &= a.agg == b.agg && a.records.len() == b.records.len();
    }
    let s = cached.stats();
    println!(
        "  after {update_msgs} update msgs: answers coherent = {coherent}, \
         cache hits = {}, misses = {}",
        s.cache_hits, s.cache_misses
    );

    csv_begin("metric,value");
    println!("shard_catalog_mock_ok,{}", mock_ok as u8);
    println!("shard_catalog_bas_ok,{}", bas_ok as u8);
    for (i, &shards) in [1i64, 2, 4, 8].iter().enumerate() {
        println!("answer_s_{shards}_shards,{}", answer_by_count[i]);
        println!("verify_s_{shards}_shards,{}", verify_by_count[i]);
    }
    println!("verify_scaling_8_vs_1,{scaling}");
    println!("sigcache_uncached_ops,{plain_ops}");
    println!("sigcache_cached_ops,{cached_ops}");
    println!("sigcache_op_reduction,{op_ratio}");
    println!("sigcache_coherent,{}", coherent as u8);
    csv_end();

    assert!(mock_ok, "cross-shard catalog must fully reject under Mock");
    assert!(bas_ok, "cross-shard catalog must fully reject under BAS");
    assert!(
        scaling <= 2.0,
        "stitched verification at 8 shards must stay within 2x of 1 shard \
         (got {scaling:.2}x)"
    );
    assert!(coherent, "cached answers must match the uncached replica");
    assert!(
        op_ratio >= 2.0,
        "sigcache must at least halve aggregation ops on wide ranges \
         (got {op_ratio:.1}x)"
    );
    println!(
        "\nAll cross-shard strategies rejected; verify scaling 8-vs-1 = \
         {scaling:.2}x; sigcache op reduction {op_ratio:.1}x."
    );
}
