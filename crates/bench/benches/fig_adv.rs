//! fig_adv: adversarial-server conformance & batched client verification.
//!
//! Part 1 replays the full `authdb_core::adversary` tamper catalog against
//! the verifier — first with the fast Mock scheme, then with real BAS
//! crypto — asserting every strategy is rejected with its expected
//! `VerifyError` while the honest answer to the same query verifies.
//!
//! Part 2 measures the batched verification path: one
//! `verify_selection_batch` over K honest BAS answers versus K independent
//! `verify_selection` calls. The random-linear-combination multi-pairing
//! must deliver ≥ 2× throughput at K = 16 (the acceptance bar).

use std::time::Instant;

use authdb_bench::{banner, csv_begin, csv_end, env_jobs, fmt_time};
use authdb_core::adversary::{run_catalog, Conformance};
use authdb_core::da::{DaConfig, DataAggregator, SigningMode};
use authdb_core::qs::QueryServer;
use authdb_core::record::Schema;
use authdb_core::verify::Verifier;
use authdb_crypto::signer::SchemeKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_catalog(label: &str, results: &[Conformance]) -> bool {
    println!("\nTamper catalog under {label}:");
    println!(
        "{:<26} | {:>9} | {:<40} | {:>4}",
        "strategy", "honest ok", "tampered answer rejected with", "pass"
    );
    println!("{:-<26}-+-{:->9}-+-{:-<40}-+-{:->4}", "", "", "", "");
    let mut all_ok = true;
    for c in results {
        let rejection = match &c.outcome {
            Ok(_) => "ACCEPTED (soundness hole!)".to_string(),
            Err(e) => format!("{e:?}"),
        };
        let ok = c.ok();
        all_ok &= ok;
        println!(
            "{:<26} | {:>9} | {:<40} | {:>4}",
            c.tamper.name(),
            if c.honest_ok { "yes" } else { "NO" },
            rejection,
            if ok { "ok" } else { "FAIL" },
        );
    }
    all_ok
}

fn main() {
    banner(
        "fig_adv",
        "Adversarial conformance catalog & batched verification",
    );

    // ---- Part 1: the tamper catalog ----
    let mock_ok = print_catalog("Mock (structural)", &run_catalog(SchemeKind::Mock));
    let bas_ok = print_catalog("BAS (real BLS/BN254)", &run_catalog(SchemeKind::Bas));

    // ---- Part 2: batched verification throughput ----
    let k = 16usize;
    let n = 2_048i64;
    let span = 15i64; // ~16 records per answer
    println!(
        "\nBatched verification: {k} answers of ~{} records each, N = {n} (BAS)",
        span + 1
    );
    let schema = Schema::new(2, 64);
    let cfg = DaConfig {
        schema,
        scheme: SchemeKind::Bas,
        mode: SigningMode::Chained,
        rho: 10,
        rho_prime: 100_000,
        buffer_pages: 4096,
        fill: 2.0 / 3.0,
    };
    let mut rng = StdRng::seed_from_u64(20);
    let mut da = DataAggregator::new(cfg, &mut rng);
    let t = Instant::now();
    let boot = da.bootstrap((0..n).map(|i| vec![i * 10, i]).collect(), env_jobs());
    println!(
        "  bootstrap ({n} BLS signatures): {}",
        fmt_time(t.elapsed().as_secs_f64())
    );
    let qs = QueryServer::from_bootstrap(
        da.public_params(),
        schema,
        SigningMode::Chained,
        &boot,
        4096,
        2.0 / 3.0,
    );
    let verifier = Verifier::new(da.public_params(), schema, 10);

    let queries: Vec<(i64, i64)> = (0..k as i64)
        .map(|i| {
            let lo = i * (n / k as i64) * 10;
            (lo, lo + span * 10)
        })
        .collect();
    let answers: Vec<_> = queries
        .iter()
        .map(|&(lo, hi)| qs.select_range(lo, hi).expect("chained mode"))
        .collect();

    let reps = 5;
    // Sequential: K independent verify_selection calls.
    let t = Instant::now();
    for _ in 0..reps {
        for (&(lo, hi), ans) in queries.iter().zip(&answers) {
            verifier
                .verify_selection(lo, hi, ans, 0, true)
                .expect("honest answer verifies");
        }
    }
    let seq = t.elapsed().as_secs_f64() / reps as f64;

    // Batched: one RLC multi-pairing for the whole set.
    let t = Instant::now();
    for _ in 0..reps {
        verifier
            .verify_selection_batch(&queries, &answers, 0, true, &mut rng)
            .expect("honest batch verifies");
    }
    let batch = t.elapsed().as_secs_f64() / reps as f64;

    let speedup = seq / batch;
    println!("  {k} x verify_selection : {}", fmt_time(seq));
    println!("  1 x verify_selection_batch({k}): {}", fmt_time(batch));
    println!("  speedup: {speedup:.2}x (acceptance bar: 2.00x)");

    csv_begin("metric,value");
    println!("catalog_mock_ok,{}", mock_ok as u8);
    println!("catalog_bas_ok,{}", bas_ok as u8);
    println!("batch_k,{k}");
    println!("verify_sequential_s,{seq}");
    println!("verify_batch_s,{batch}");
    println!("batch_speedup,{speedup}");
    csv_end();

    assert!(mock_ok, "tamper catalog must fully reject under Mock");
    assert!(bas_ok, "tamper catalog must fully reject under BAS");
    assert!(
        speedup >= 2.0,
        "batched verification must be >= 2x sequential (got {speedup:.2}x)"
    );
    println!("\nAll tamper strategies rejected; batch verification {speedup:.2}x faster.");
}
