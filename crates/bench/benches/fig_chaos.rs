//! fig_chaos: goodput and latency of the resilient fan-out under injected
//! faults.
//!
//! The chaos-tested claim is qualitative — *no lies under chaos* — but the
//! cost of surviving chaos is quantitative: every retry burns a timeout,
//! every timeout is paid in tail latency, and the `crates/sim` retry model
//! claims to predict both. This bench drives the real stack — a 4-shard
//! deployment behind one [`ChaosProxy`] per shard endpoint, queried by a
//! [`ShardFanout`] with deadlines and bounded jittered retries — at fault
//! rates of 0%, 5%, and 20% (stalls + sub-deadline delays, seeded and
//! reproducible), and reports:
//!
//! * **goodput** — the fraction of queries ending in a complete verdict
//!   (the remainder end in sound partial verdicts; nothing may end in a
//!   rejected or wrong answer);
//! * **p99 latency** per query, fault-free vs faulted;
//! * **retry amplification** — proxied connections per logical request —
//!   checked against `retry_model::expected_attempts` with a 25% bar, so
//!   a retry-loop change that spends different attempts than the
//!   simulator charges fails here instead of silently skewing the DES.

use std::time::{Duration, Instant};

use authdb_bench::{banner, csv_begin, csv_end, env_jobs};
use authdb_core::da::{DaConfig, SigningMode};
use authdb_core::qs::QsOptions;
use authdb_core::record::Schema;
use authdb_core::shard::{ShardedAggregator, ShardedQueryServer};
use authdb_core::verify::{EpochView, Verifier};
use authdb_crypto::signer::SchemeKind;
use authdb_net::{
    ChaosProxy, ClientConfig, FaultPlan, QsServer, QsServerOptions, RetryPolicy, ShardFanout,
};
use authdb_sim::cost::retry_model;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: i64 = 512;
const KEY_STRIDE: i64 = 10;
const SHARDS: i64 = 4;
const QUERIES: usize = 60;
const READ_TIMEOUT: Duration = Duration::from_millis(100);
const MAX_RETRIES: usize = 2;

fn cfg() -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        rho: 10,
        rho_prime: 100_000,
        buffer_pages: 4096,
        fill: 2.0 / 3.0,
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: READ_TIMEOUT,
        read_timeout: READ_TIMEOUT,
        write_timeout: READ_TIMEOUT,
        retry: RetryPolicy {
            max_retries: MAX_RETRIES,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 7,
        },
        ..ClientConfig::default()
    }
}

/// Seam-straddling full-width queries: every one overlaps all four shards,
/// so each logical query is four per-shard requests.
fn queries() -> Vec<(i64, i64)> {
    let span = N * KEY_STRIDE;
    (0..QUERIES as i64)
        .map(|q| {
            let jitter = (q * 37) % 200;
            (jitter, span - 1 - jitter)
        })
        .collect()
}

struct RatePoint {
    goodput: f64,
    partial_rate: f64,
    p50: f64,
    p99: f64,
    amplification: f64,
    model_amplification: f64,
}

fn run_rate(
    server: &QsServer,
    verifier: &Verifier,
    view: &EpochView,
    drop_pct: u8,
    delay_pct: u8,
    rng: &mut StdRng,
) -> RatePoint {
    // One proxy per shard endpoint, each with its own seeded schedule —
    // same seeds every run, so the figure is reproducible.
    let proxies: Vec<ChaosProxy> = (0..SHARDS)
        .map(|i| {
            let plan = FaultPlan::seeded(
                1000 + drop_pct as u64 * 31 + i as u64,
                QUERIES * (MAX_RETRIES + 1),
                drop_pct,
                delay_pct,
                Duration::from_millis(10),
            );
            ChaosProxy::spawn(server.addr(), plan).expect("proxy")
        })
        .collect();
    let endpoints: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();

    let mut fanout = ShardFanout::new(
        server.with_server(|s| s.map().clone()),
        endpoints,
        client_config(),
    );

    let mut latencies = Vec::with_capacity(QUERIES);
    let mut complete = 0usize;
    let mut partial = 0usize;
    let mut requests = 0u64;
    for (lo, hi) in queries() {
        let t = Instant::now();
        let answer = fanout
            .select_range(lo, hi)
            .expect("fan-out may only fail on integrity faults, and this schedule injects none");
        latencies.push(t.elapsed().as_secs_f64());
        requests += SHARDS as u64;
        let verdict = verifier
            .verify_partial_selection(
                lo,
                hi,
                &answer.answer,
                &answer.unreachable(),
                view,
                0,
                true,
                rng,
            )
            .expect("availability faults must never produce a verify error");
        if verdict.is_complete() {
            complete += 1;
        } else {
            partial += 1;
        }
    }
    let attempts: u64 = proxies.iter().map(|p| p.connections()).sum();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];

    RatePoint {
        goodput: complete as f64 / QUERIES as f64,
        partial_rate: partial as f64 / QUERIES as f64,
        p50: pct(0.50),
        p99: pct(0.99),
        amplification: attempts as f64 / requests as f64,
        model_amplification: retry_model::expected_attempts(drop_pct as f64 / 100.0, MAX_RETRIES),
    }
}

fn main() {
    banner(
        "fig_chaos",
        "Resilient fan-out under fault injection: goodput, tail latency, retry amplification",
    );
    println!(
        "N = {N} Mock records, {SHARDS} shards, {QUERIES} full-span queries per rate, \
         read deadline {READ_TIMEOUT:?}, {MAX_RETRIES} retries"
    );

    let span = N * KEY_STRIDE;
    let splits: Vec<i64> = (1..SHARDS).map(|i| i * span / SHARDS).collect();
    let mut rng = StdRng::seed_from_u64(42);
    let mut sa = ShardedAggregator::new(cfg(), splits, &mut rng);
    let boots = sa.bootstrap(
        (0..N).map(|i| vec![i * KEY_STRIDE, i]).collect(),
        env_jobs(),
    );
    let sqs = ShardedQueryServer::from_bootstraps(
        sa.public_params(),
        sa.config(),
        sa.map().clone(),
        &boots,
        &QsOptions::default(),
    );
    let verifier = Verifier::new(sa.public_params(), sa.config().schema, sa.config().rho);
    let view = EpochView::genesis(sa.map(), &sa.public_params()).expect("genesis view");
    let server = QsServer::spawn(sqs, QsServerOptions::default()).expect("bind loopback");
    let mut vrng = StdRng::seed_from_u64(77);

    println!(
        "{:>10} | {:>8} | {:>8} | {:>9} | {:>9} | {:>8} | {:>9} | {:>6}",
        "fault rate", "goodput", "partial", "p50", "p99", "amplif.", "model", "drift"
    );
    println!(
        "{:->10}-+-{:->8}-+-{:->8}-+-{:->9}-+-{:->9}-+-{:->8}-+-{:->9}-+-{:->6}",
        "", "", "", "", "", "", "", ""
    );

    let mut csv_rows: Vec<String> = Vec::new();
    let mut worst_drift: f64 = 0.0;
    for &(drop_pct, delay_pct) in &[(0u8, 0u8), (5, 10), (20, 10)] {
        let point = run_rate(&server, &verifier, &view, drop_pct, delay_pct, &mut vrng);
        let drift =
            (point.amplification - point.model_amplification).abs() / point.model_amplification;
        println!(
            "{:>9}% | {:>7.1}% | {:>7.1}% | {:>7.1}ms | {:>7.1}ms | {:>8.3} | {:>9.3} | {:>5.1}%",
            drop_pct,
            point.goodput * 100.0,
            point.partial_rate * 100.0,
            point.p50 * 1e3,
            point.p99 * 1e3,
            point.amplification,
            point.model_amplification,
            drift * 100.0
        );
        for (metric, value) in [
            ("goodput", point.goodput),
            ("partial_rate", point.partial_rate),
            ("p50_s", point.p50),
            ("p99_s", point.p99),
            ("retry_amplification", point.amplification),
            ("model_amplification", point.model_amplification),
        ] {
            csv_rows.push(format!("{metric}_{drop_pct}pct,{value}"));
        }
        worst_drift = worst_drift.max(drift);

        if drop_pct == 0 {
            // The 0%-fault gate: chaos machinery must be invisible when
            // the network is honest.
            assert!(
                (point.goodput - 1.0).abs() < f64::EPSILON,
                "fault-free queries must all complete"
            );
            assert!(
                (point.amplification - 1.0).abs() < f64::EPSILON,
                "fault-free queries must not retry"
            );
        }
    }
    server.shutdown();

    csv_begin("metric,value");
    for row in &csv_rows {
        println!("{row}");
    }
    println!("model_worst_drift,{worst_drift}");
    csv_end();

    assert!(
        worst_drift <= 0.25,
        "measured retry amplification must agree with the sim retry model \
         within 25% (worst drift {:.1}%) — recalibrate crates/sim cost.rs \
         retry_model",
        worst_drift * 100.0
    );
    println!(
        "\nRetry-model agreement: worst drift {:.2}% (bar: 25%).",
        worst_drift * 100.0
    );
}
