//! Table 1: Height of Index Tree versus N — ASign vs EMB−.
//!
//! Reproduces the analytic model verbatim (paper layout constants: 28-byte
//! data entries, effective fanouts 341 / 97), then cross-checks with real
//! trees bulk-loaded at the smaller N values (our entries are 8-byte keys /
//! rids, so absolute fanouts differ; the ASign-shorter-than-EMB− shape is
//! what matters).

use authdb_bench::{banner, csv_begin, csv_end, full_scale};
use authdb_index::asign::model;
use authdb_index::btree::{BTree, LeafEntry, NoAnnotation, TreeConfig};
use authdb_index::emb::{DigestKind, EmbTree};
use authdb_storage::{BufferPool, Disk};

fn real_heights(n: usize) -> (usize, usize) {
    let entries: Vec<LeafEntry> = (0..n as i64)
        .map(|i| LeafEntry {
            key: i,
            rid: i as u64,
            payload: vec![0u8; 20],
        })
        .collect();
    let pool = BufferPool::new(Disk::new(), 512);
    let mut asign = BTree::new(
        pool,
        TreeConfig {
            payload_len: 20,
            ann_len: 0,
        },
        NoAnnotation,
    );
    asign.bulk_load(&entries, 2.0 / 3.0);

    let pool = BufferPool::new(Disk::new(), 512);
    let mut emb = EmbTree::new(pool, DigestKind::Sha1);
    let demb: Vec<LeafEntry> = entries
        .iter()
        .map(|e| LeafEntry {
            key: e.key,
            rid: e.rid,
            payload: DigestKind::Sha1.hash(&e.key.to_be_bytes()),
        })
        .collect();
    emb.bulk_load(&demb, 2.0 / 3.0);
    (asign.height(), emb.height())
}

fn main() {
    banner("Table 1", "Height of Index Tree versus N");
    let asign = model::asign_paper();
    let emb = model::emb_paper();
    let ns: [u64; 5] = [10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

    println!("\nAnalytic model (paper constants: 146 entries/leaf, fanout 341 vs 97):");
    println!("{:>12} | {:>6} | {:>6}", "N", "ASign", "EMB-");
    println!("{:->12}-+-{:->6}-+-{:->6}", "", "", "");
    csv_begin("n,asign_levels,emb_levels");
    let paper_asign = [1, 2, 2, 2, 3];
    let paper_emb = [2, 2, 3, 3, 4];
    for (i, &n) in ns.iter().enumerate() {
        let a = asign.internal_levels(n);
        let e = emb.internal_levels(n);
        println!("{n:>12} | {a:>6} | {e:>6}");
        assert_eq!(a, paper_asign[i], "ASign mismatch vs paper at N={n}");
        assert_eq!(e, paper_emb[i], "EMB- mismatch vs paper at N={n}");
        println!("{n},{a},{e}");
    }
    csv_end();
    println!("(matches the paper's Table 1 exactly)");

    println!("\nMeasured heights of real bulk-loaded trees (total levels incl. leaf):");
    println!("{:>12} | {:>6} | {:>6}", "N", "ASign", "EMB-");
    println!("{:->12}-+-{:->6}-+-{:->6}", "", "", "");
    csv_begin("n,asign_height,emb_height");
    let mut real_ns = vec![10_000usize, 100_000];
    if full_scale() {
        real_ns.push(1_000_000);
    }
    for n in real_ns {
        let (a, e) = real_heights(n);
        println!("{n:>12} | {a:>6} | {e:>6}");
        println!("{n},{a},{e}");
        assert!(e >= a, "EMB- must never be shorter than ASign");
    }
    csv_end();
}
