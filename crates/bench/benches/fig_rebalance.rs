//! fig_rebalance: DA-certified shard rebalancing — handoff cost, epoch-bump
//! verification, and the cross-epoch adversary catalog.
//!
//! Part 1 replays the rebalancing attack catalog (stale-epoch map replay,
//! handoff forgery, split brain, transition-chain break) against the
//! epoch-gated `Verifier::verify_sharded_selection` / `EpochView::advance`
//! — under the fast Mock scheme and under real BAS crypto — asserting every
//! strategy is rejected with its pinned typed error while the honest
//! answers (and the honest transition) are accepted.
//!
//! Part 2 measures **handoff cost vs. shard size**: splitting a BAS shard
//! of n records re-signs exactly that shard (fresh chains at the new fences
//! plus the baseline summary), so the cost must grow with n — and, at fixed
//! n, stay flat in the *total* deployment size (survivors only re-bind
//! their summary streams).
//!
//! Part 3 checks the acceptance bar: a live deployment crosses a split and
//! a merge with **zero rejected honest answers**, and stitched verification
//! cost after the epoch bump stays within 1.5× of the pre-bump cost (the
//! epoch gate is a hash comparison, not extra pairing work).

use std::time::Instant;

use authdb_bench::{banner, csv_begin, csv_end, env_jobs, fmt_time};
use authdb_core::adversary::{run_rebalance_catalog, RebalanceConformance};
use authdb_core::da::{DaConfig, SigningMode};
use authdb_core::qs::QsOptions;
use authdb_core::record::Schema;
use authdb_core::shard::{RebalancePlan, ShardedAggregator, ShardedQueryServer};
use authdb_core::verify::{EpochView, Verifier};
use authdb_crypto::signer::SchemeKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

const KEY_STRIDE: i64 = 10;

fn bas_cfg() -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Bas,
        mode: SigningMode::Chained,
        rho: 10,
        rho_prime: 100_000,
        buffer_pages: 4096,
        fill: 2.0 / 3.0,
    }
}

fn print_catalog(label: &str, results: &[RebalanceConformance]) -> bool {
    println!("\nRebalancing tamper catalog under {label}:");
    println!(
        "{:<20} | {:>9} | {:<44} | {:>4}",
        "strategy", "honest ok", "tampered artifact rejected with", "pass"
    );
    println!("{:-<20}-+-{:->9}-+-{:-<44}-+-{:->4}", "", "", "", "");
    let mut all_ok = true;
    for c in results {
        let rejection = match &c.outcome {
            Ok(_) => "ACCEPTED (epoch soundness hole!)".to_string(),
            Err(e) => format!("{e:?}"),
        };
        let ok = c.ok();
        all_ok &= ok;
        println!(
            "{:<20} | {:>9} | {:<44} | {:>4}",
            c.tamper.name(),
            if c.honest_ok { "yes" } else { "NO" },
            rejection,
            if ok { "ok" } else { "FAIL" },
        );
    }
    all_ok
}

/// Build a 2-shard BAS deployment with `n` records split down the middle.
fn two_shard_system(n: i64) -> (ShardedAggregator, ShardedQueryServer, Verifier, EpochView) {
    let span = n * KEY_STRIDE;
    let mut rng = StdRng::seed_from_u64(42);
    let mut sa = ShardedAggregator::new(bas_cfg(), vec![span / 2], &mut rng);
    let boots = sa.bootstrap(
        (0..n).map(|i| vec![i * KEY_STRIDE, i]).collect(),
        env_jobs(),
    );
    let sqs = ShardedQueryServer::from_bootstraps(
        sa.public_params(),
        sa.config(),
        sa.map().clone(),
        &boots,
        &QsOptions::default(),
    );
    let v = Verifier::new(sa.public_params(), sa.config().schema, sa.config().rho);
    let view = EpochView::genesis(sa.map(), &sa.public_params()).expect("genesis view");
    (sa, sqs, v, view)
}

fn main() {
    banner(
        "fig_rebalance",
        "Epoch-tagged rebalancing: certified handoff, one-live-epoch verification",
    );

    // ---- Part 1: the rebalancing catalog ----
    let mock_ok = print_catalog(
        "Mock (structural)",
        &run_rebalance_catalog(SchemeKind::Mock),
    );
    let bas_ok = print_catalog(
        "BAS (real BLS/BN254)",
        &run_rebalance_catalog(SchemeKind::Bas),
    );

    // ---- Part 2: handoff cost vs shard size ----
    println!(
        "\nHandoff cost: splitting one BAS shard of n records (jobs = {})",
        env_jobs()
    );
    println!("{:>8} | {:>14} | {:>16}", "n", "split", "per record");
    println!("{:->8}-+-{:->14}-+-{:->16}", "", "", "");
    let sizes = [256i64, 512, 1024, 2048];
    let mut handoff_secs = Vec::new();
    for &n in &sizes {
        let (mut sa, sqs, _v, _view) = two_shard_system(n);
        // Split the right shard (n/2 records) at its midpoint: the handoff
        // re-signs exactly those records.
        let at = 3 * n * KEY_STRIDE / 4;
        let t = Instant::now();
        let rb = sa.rebalance(RebalancePlan::Split { shard: 1, at }, env_jobs());
        let dt = t.elapsed().as_secs_f64();
        sqs.apply_rebalance(&rb).expect("split applies");
        let moved: usize = rb.handoffs.iter().map(|h| h.records.len()).sum();
        assert_eq!(moved as i64, n / 2, "handoff touches only the split shard");
        println!(
            "{:>8} | {:>14} | {:>13}/rec",
            n / 2,
            fmt_time(dt),
            fmt_time(dt / moved.max(1) as f64)
        );
        handoff_secs.push(dt);
    }

    // ---- Part 3: verification cost flat across the epoch bump ----
    let n = 2048i64;
    let span = n * KEY_STRIDE;
    let (mut sa, mut sqs, v, mut view) = two_shard_system(n);
    let queries: Vec<(i64, i64)> = (1..=4)
        .map(|q| {
            let c = q * span / 5;
            (c - 64 * KEY_STRIDE, c + 64 * KEY_STRIDE - 1)
        })
        .collect();
    let reps = 5;
    let mut rng = StdRng::seed_from_u64(9);
    let timed_verify = |sqs: &mut ShardedQueryServer,
                        view: &EpochView,
                        now: u64,
                        rng: &mut StdRng|
     -> (f64, usize) {
        let answers: Vec<_> = queries
            .iter()
            .map(|&(lo, hi)| sqs.select_range(lo, hi).expect("chained mode"))
            .collect();
        let mut rejected = 0usize;
        let t = Instant::now();
        for _ in 0..reps {
            for (&(lo, hi), ans) in queries.iter().zip(&answers) {
                if v.verify_sharded_selection(lo, hi, ans, view, now, true, rng)
                    .is_err()
                {
                    rejected += 1;
                }
            }
        }
        (t.elapsed().as_secs_f64() / reps as f64, rejected)
    };

    let (before, rej0) = timed_verify(&mut sqs, &view, sa.now(), &mut rng);
    // Epoch bump 1: split the hot right shard.
    let rb = sa.rebalance(
        RebalancePlan::Split {
            shard: 1,
            at: 3 * span / 4,
        },
        env_jobs(),
    );
    sqs.apply_rebalance(&rb).expect("split applies");
    view.advance(&rb.transition, v.public_params())
        .expect("transition observed");
    let (after_split, rej1) = timed_verify(&mut sqs, &view, sa.now(), &mut rng);
    // Epoch bump 2: merge it back.
    let rb = sa.rebalance(RebalancePlan::Merge { left: 1 }, env_jobs());
    sqs.apply_rebalance(&rb).expect("merge applies");
    view.advance(&rb.transition, v.public_params())
        .expect("transition observed");
    let (after_merge, rej2) = timed_verify(&mut sqs, &view, sa.now(), &mut rng);

    let ratio_split = after_split / before;
    let ratio_merge = after_merge / before;
    println!("\nStitched verification across epoch bumps (N = {n}, 4 queries, BAS):");
    println!("  epoch 1 (2 shards):            {}", fmt_time(before));
    println!(
        "  epoch 2 (post-split, 3 shards): {} ({ratio_split:.2}x)",
        fmt_time(after_split)
    );
    println!(
        "  epoch 3 (post-merge, 2 shards): {} ({ratio_merge:.2}x)",
        fmt_time(after_merge)
    );
    let rejected = rej0 + rej1 + rej2;
    println!("  rejected honest answers across all epochs: {rejected}");

    csv_begin("metric,value");
    println!("rebalance_catalog_mock_ok,{}", mock_ok as u8);
    println!("rebalance_catalog_bas_ok,{}", bas_ok as u8);
    for (i, &n) in sizes.iter().enumerate() {
        println!("handoff_s_{}_records,{}", n / 2, handoff_secs[i]);
    }
    println!("verify_s_epoch1,{before}");
    println!("verify_s_epoch2_split,{after_split}");
    println!("verify_s_epoch3_merge,{after_merge}");
    println!("verify_ratio_post_split,{ratio_split}");
    println!("verify_ratio_post_merge,{ratio_merge}");
    println!("rejected_honest_answers,{rejected}");
    csv_end();

    assert!(mock_ok, "rebalancing catalog must fully reject under Mock");
    assert!(bas_ok, "rebalancing catalog must fully reject under BAS");
    assert_eq!(rejected, 0, "zero rejected honest answers across epochs");
    assert!(
        handoff_secs[3] > handoff_secs[0],
        "handoff cost must scale with the split shard's size"
    );
    assert!(
        ratio_split <= 1.5 && ratio_merge <= 1.5,
        "stitched verification must stay within 1.5x across an epoch bump \
         (split {ratio_split:.2}x, merge {ratio_merge:.2}x)"
    );
    println!(
        "\nAll rebalancing strategies rejected; verify cost {ratio_split:.2}x after split, \
         {ratio_merge:.2}x after merge; zero honest rejections."
    );
}
