//! Figure 4: Configuration for Join Processing with Bloom Filters.
//!
//! The analytic surface `z = 0.0432·(I_A/I_B) + 2·(p/I_B)` against the
//! viability plane `z = 0.75` (formula 5), including the annotated
//! thresholds `I_B/p ≥ 2.83` at `I_A/I_B = 1` and `≥ 6.29` at ratio 10.

use authdb_bench::{banner, csv_begin, csv_end};
use authdb_core::join::viability;

fn main() {
    banner("Figure 4", "Viability surface for BF join configuration");

    println!("\nz(I_A/I_B, I_B/p); viable (BF wins) where z < 0.75:\n");
    let ratios = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0];
    let part_sizes = [2.0, 2.83, 4.0, 6.0, 6.29, 8.0, 10.0];
    print!("{:>10} |", "IA/IB \\ IB/p");
    for p in part_sizes {
        print!(" {p:>7.2}");
    }
    println!();
    println!("{:-<11}+{:-<56}", "", "");
    csv_begin("ia_over_ib,ib_over_p,z,viable");
    for r in ratios {
        print!("{r:>10.1} |");
        for p in part_sizes {
            let z = viability::z(r, p);
            let marker = if viability::bf_viable(r, p) { "" } else { "*" };
            print!(" {z:>6.3}{marker}");
            println!("{r},{p},{z},{}", viability::bf_viable(r, p));
        }
        println!();
    }
    csv_end();
    println!("(* = not viable, z >= 0.75)");

    println!("\nMinimum viable partition size I_B/p:");
    for r in [1.0, 2.0, 5.0, 10.0] {
        println!(
            "  I_A/I_B = {r:>4.1}: I_B/p >= {:.2}",
            viability::min_partition_size(r)
        );
    }
    let t1 = viability::min_partition_size(1.0);
    let t10 = viability::min_partition_size(10.0);
    assert!((t1 - 2.83).abs() < 0.01, "threshold at ratio 1");
    assert!((t10 - 6.29).abs() < 0.01, "threshold at ratio 10");
    println!("\nPaper's annotated thresholds reproduced: 2.83 @ ratio 1, 6.29 @ ratio 10.");

    println!("\nNon-PK-FK regime (Section 3.5): BF not beneficial when I_B >= 7.83 I_A —");
    println!(
        "e.g. I_A/I_B = 1/8: min I_B/p = {:.1} (unbounded/negative => infeasible)",
        viability::min_partition_size(1.0 / 8.0)
    );
}
