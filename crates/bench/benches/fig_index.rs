//! fig_index: per-answer `select_range` cost with the decoded-node cache.
//!
//! After the transport went concurrent (PR 8), `fig_conc`'s loopback sweep
//! showed the next bottleneck in-process: `select_range` cost ~16 µs per
//! answer even under Mock crypto, because the B+-tree re-decoded a full
//! `Node` from page bytes on every access and the aggregate-signature
//! cache rebuilt its leaf mirror via `scan_all` whenever an update landed.
//! This bench measures what the decoded-node cache, the zero-clone range
//! visitor, and incremental sigcache maintenance bought back.
//!
//! Two identical Mock replicas are bootstrapped from the *same* DA
//! signing pass; the only difference is `QsOptions::node_cache` — the
//! paper-shaped configuration (`DEFAULT_NODE_CACHE` decoded nodes) versus
//! `0`, which decodes each page afresh on every read, the pre-PR
//! discipline. The grid: N ∈ {2048, 16384} records, uniform versus skewed
//! (hot-prefix) query ranges, with and without a live certified update
//! stream applied to both replicas mid-measurement. Every answer from the
//! cached replica is checked bit-identical (canonical wire encoding)
//! against the uncached one — the cache must be invisible to clients.
//!
//! Acceptance bar: at N = 2048 (the `fig_conc` loopback shape) the cached
//! replica must answer at least 3× cheaper per query than the uncached
//! baseline, in both distributions, without updates. Buffer-pool and
//! node-cache hit rates are reported per scenario.

use std::time::Instant;

use authdb_bench::{banner, csv_begin, csv_end, fmt_time};
use authdb_core::da::{DaConfig, DataAggregator, SigningMode};
use authdb_core::qs::{QsOptions, QueryServer};
use authdb_core::record::Schema;
use authdb_crypto::signer::SchemeKind;
use authdb_wire::WireEncode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEY_STRIDE: i64 = 10;
/// Query width in keys (~2 records per answer): point-lookup-sized
/// answers keep aggregation and heap reads small, so the measurement
/// exposes the per-traversal decode cost the node cache removes.
const WIDTH: i64 = 2 * KEY_STRIDE;
/// Measured queries per scenario (after warmup).
const QUERIES: usize = 512;
/// Warmup queries (populate buffer pool and node cache).
const WARMUP: usize = 128;
/// With the update stream on: one certified insert + one delete applied
/// to both replicas every this many queries.
const UPDATE_EVERY: usize = 8;

fn cfg() -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        // Summaries out of frame: the subject is proof-construction CPU.
        rho: 1_000_000,
        rho_prime: 1_000_000,
        buffer_pages: 8192,
        fill: 2.0 / 3.0,
    }
}

struct Bed {
    da: DataAggregator,
    cached: QueryServer,
    plain: QueryServer,
    n: i64,
    /// Next key offset for stream inserts (odd, so they never collide
    /// with the stride-10 bootstrap keys).
    next_insert: i64,
    /// Rids inserted by the stream, eligible for deletion.
    live: Vec<u64>,
}

fn build(n: i64) -> Bed {
    let cfg = cfg();
    let mut rng = StdRng::seed_from_u64(97);
    let mut da = DataAggregator::new(cfg.clone(), &mut rng);
    let boot = da.bootstrap((0..n).map(|i| vec![i * KEY_STRIDE, i]).collect(), 4);
    let mk = |node_cache: usize| {
        QueryServer::with_options(
            da.public_params(),
            cfg.schema,
            cfg.mode,
            &boot,
            QsOptions {
                buffer_pages: cfg.buffer_pages,
                fill: cfg.fill,
                node_cache,
                ..QsOptions::default()
            },
        )
    };
    let cached = mk(QsOptions::default().node_cache);
    let plain = mk(0);
    Bed {
        da,
        cached,
        plain,
        n,
        next_insert: 5,
        live: Vec::new(),
    }
}

impl Bed {
    fn span(&self) -> i64 {
        self.n * KEY_STRIDE
    }

    /// One certified insert plus (once a backlog exists) one certified
    /// delete, applied identically to both replicas.
    fn stream_update(&mut self) {
        let key = self.next_insert % self.span();
        self.next_insert += 7 * KEY_STRIDE; // stays odd: never a bootstrap key
        let msgs = self.da.insert(vec![key, -1]);
        self.live.push(msgs[0].record.rid);
        for m in &msgs {
            self.cached.apply(m);
            self.plain.apply(m);
        }
        if self.live.len() > 32 {
            let rid = self.live.remove(0);
            for m in &self.da.delete_record(rid) {
                self.cached.apply(m);
                self.plain.apply(m);
            }
        }
    }
}

/// Draw a query range: uniform start, or skewed (quadratic hot prefix —
/// low keys queried far more often, the shape that makes a small decoded
/// set cover most traffic).
fn draw(rng: &mut StdRng, span: i64, skewed: bool) -> (i64, i64) {
    let r: f64 = rng.gen();
    let frac = if skewed { r * r * 0.25 } else { r };
    let lo = ((span - WIDTH) as f64 * frac) as i64;
    (lo, lo + WIDTH - 1)
}

struct Row {
    cached_us: f64,
    plain_us: f64,
    node_hit_rate: f64,
    pool_hit_rate: f64,
}

fn scenario(bed: &mut Bed, skewed: bool, updates: bool, seed: u64) -> Row {
    let span = bed.span();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..WARMUP {
        let (lo, hi) = draw(&mut rng, span, skewed);
        let a = bed.cached.select_range(lo, hi).expect("cached warmup");
        let b = bed.plain.select_range(lo, hi).expect("plain warmup");
        assert_eq!(a.encode(), b.encode(), "warmup answers diverged");
    }
    let nc0 = bed.cached.stats();
    let pool0 = bed.cached.pool_stats();
    let (mut t_cached, mut t_plain) = (0.0f64, 0.0f64);
    for q in 0..QUERIES {
        if updates && q % UPDATE_EVERY == 0 {
            bed.stream_update();
        }
        let (lo, hi) = draw(&mut rng, span, skewed);
        let t = Instant::now();
        let a = bed.cached.select_range(lo, hi).expect("cached query");
        t_cached += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let b = bed.plain.select_range(lo, hi).expect("plain query");
        t_plain += t.elapsed().as_secs_f64();
        assert_eq!(
            a.encode(),
            b.encode(),
            "cached answer diverged from uncached at [{lo}, {hi}]"
        );
    }
    let nc1 = bed.cached.stats();
    let pool1 = bed.cached.pool_stats();
    let (nh, nm) = (
        nc1.node_cache_hits - nc0.node_cache_hits,
        nc1.node_cache_misses - nc0.node_cache_misses,
    );
    let (ph, pm) = (pool1.hits - pool0.hits, pool1.misses - pool0.misses);
    let rate = |h: u64, m: u64| {
        if h + m == 0 {
            1.0
        } else {
            h as f64 / (h + m) as f64
        }
    };
    Row {
        cached_us: t_cached / QUERIES as f64 * 1e6,
        plain_us: t_plain / QUERIES as f64 * 1e6,
        node_hit_rate: rate(nh, nm),
        pool_hit_rate: rate(ph, pm),
    }
}

fn main() {
    banner(
        "fig_index",
        "select_range cost per answer: decoded-node cache vs per-read decode",
    );
    println!(
        "Mock scheme, {WIDTH}-key ranges (~2 records/answer), {QUERIES} queries per \
         scenario after {WARMUP} warmup; identical certified replicas, only \
         `QsOptions::node_cache` differs. Pre-PR ROADMAP floor: ~16 µs/answer."
    );
    println!(
        "\n{:>6} | {:>8} | {:>8} | {:>11} | {:>11} | {:>7} | {:>9} | {:>9}",
        "N", "dist", "updates", "cached", "uncached", "speedup", "node-hit", "pool-hit"
    );
    println!(
        "{:->6}-+-{:->8}-+-{:->8}-+-{:->11}-+-{:->11}-+-{:->7}-+-{:->9}-+-{:->9}",
        "", "", "", "", "", "", "", ""
    );
    csv_begin("n,dist,updates,cached_us,plain_us,speedup,node_hit_rate,pool_hit_rate");
    let mut seed = 1000u64;
    for &n in &[2_048i64, 16_384] {
        let mut bed = build(n);
        for &(skewed, updates) in &[(false, false), (true, false), (false, true), (true, true)] {
            seed += 1;
            let row = scenario(&mut bed, skewed, updates, seed);
            let dist = if skewed { "skewed" } else { "uniform" };
            let upd = if updates { "live" } else { "off" };
            let speedup = row.plain_us / row.cached_us;
            println!(
                "{n:>6} | {dist:>8} | {upd:>8} | {:>11} | {:>11} | {speedup:>6.1}x | {:>8.1}% | {:>8.1}%",
                fmt_time(row.cached_us * 1e-6),
                fmt_time(row.plain_us * 1e-6),
                row.node_hit_rate * 100.0,
                row.pool_hit_rate * 100.0
            );
            println!(
                "{n},{dist},{upd},{:.3},{:.3},{speedup:.2},{:.4},{:.4}",
                row.cached_us, row.plain_us, row.node_hit_rate, row.pool_hit_rate
            );
            if n == 2_048 && !updates {
                assert!(
                    speedup >= 3.0,
                    "acceptance: cached select_range must be >=3x cheaper at N=2048 \
                     ({dist}), got {speedup:.2}x ({:.2} vs {:.2} us/answer)",
                    row.cached_us,
                    row.plain_us
                );
            }
        }
    }
    csv_end();
    println!("\nAcceptance holds: >=3x per-answer reduction at N=2048, answers bit-identical.");
}
