//! Figure 8: Compressed Update Summaries.
//!
//! Runs the real [`DataAggregator`] under a steady update stream with the
//! active-renewal process and sweeps the renewal age ρ′ for ρ ∈ {0.5, 1} s:
//! (a) mean compressed bitmap size per period and mean signature age;
//! (b) total summary bytes a freshly logging-in user must fetch
//! (per-bitmap size × signature age / ρ). The paper observes the total
//! bottoming out around ρ′ = 900 s at ρ = 1 s.

use authdb_bench::{banner, csv_begin, csv_end, env_n, fmt_bytes};
use authdb_core::da::{DaConfig, DataAggregator, SigningMode};
use authdb_core::record::Schema;
use authdb_crypto::signer::SchemeKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Point {
    rho_ticks: u64,
    rho_seconds: f64,
    rho_prime_ratio: u64,
    bitmap_bytes: f64,
    avg_age_seconds: f64,
    total_bytes: f64,
}

/// One configuration cell. Ticks are 1/10 s so ρ = 0.5 s is representable.
fn run_cell(n: usize, rho_seconds: f64, rho_prime_ratio: u64, upd_per_sec: f64) -> Point {
    let ticks_per_sec = 10.0;
    let rho_ticks = (rho_seconds * ticks_per_sec) as u64;
    let rho_prime_ticks = rho_ticks * rho_prime_ratio;
    let cfg = DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        rho: rho_ticks,
        rho_prime: rho_prime_ticks,
        buffer_pages: 8192,
        fill: 2.0 / 3.0,
    };
    let mut rng = StdRng::seed_from_u64(rho_prime_ratio + rho_ticks);
    let mut da = DataAggregator::new(cfg, &mut rng);
    da.bootstrap((0..n).map(|i| vec![i as i64, 0]).collect(), 4);

    // Renewal budget per period: one full scan per rho' (plus slack so the
    // cursor keeps up with integer rounding).
    let renewal_budget = (n as u64 * rho_ticks).div_ceil(rho_prime_ticks) as usize + 1;
    let upd_per_period = upd_per_sec * rho_seconds;

    // Warm up one full renewal cycle, then measure.
    let warm_periods = rho_prime_ratio + 8;
    let measure_periods = 64;
    let mut bitmap_bytes = 0usize;
    let mut measured = 0usize;
    for period in 0..(warm_periods + measure_periods) {
        da.advance_clock(rho_ticks);
        // Poisson-ish update count for the period.
        let k = upd_per_period.floor() as usize + usize::from(rng.gen_bool(upd_per_period.fract()));
        for _ in 0..k {
            let rid = rng.gen_range(0..n as u64);
            if da.record(rid).is_some() {
                da.update_record(rid, vec![rid as i64, rng.gen_range(0..1_000)]);
            }
        }
        da.background_renewal(renewal_budget);
        let (summary, _recerts) = da.force_publish_summary();
        if period >= warm_periods {
            bitmap_bytes += summary.compressed.len();
            measured += 1;
        }
    }
    let avg_bitmap = bitmap_bytes as f64 / measured as f64;
    let (avg_age_ticks, _) = da.signature_age_stats();
    let avg_age_seconds = avg_age_ticks / ticks_per_sec;
    // A user logging in fetches summaries back to the average signature age.
    let summaries_needed = (avg_age_seconds / rho_seconds).ceil();
    Point {
        rho_ticks,
        rho_seconds,
        rho_prime_ratio,
        bitmap_bytes: avg_bitmap,
        avg_age_seconds,
        total_bytes: avg_bitmap * summaries_needed,
    }
}

fn main() {
    banner(
        "Figure 8",
        "Compressed update summaries vs renewal age rho'",
    );
    let n = env_n().min(200_000); // bitmap scale; summary sizes scale with updates, not N
    let upd_per_sec = 5.0; // 50 jobs/s x 10% updates (Table 2 defaults)
    println!("N = {n}, update rate = {upd_per_sec}/s\n");

    println!(
        "{:>5} {:>8} | {:>14} | {:>12} | {:>14}",
        "rho", "rho'/rho", "bitmap/period", "avg sig age", "total summary"
    );
    println!(
        "{:->5}-{:->8}-+-{:->14}-+-{:->12}-+-{:->14}",
        "", "", "", "", ""
    );
    csv_begin("rho_s,rho_prime_ratio,bitmap_bytes,avg_age_s,total_bytes");
    let mut per_rho: Vec<(f64, Vec<Point>)> = Vec::new();
    for rho_seconds in [0.5, 1.0] {
        let mut points = Vec::new();
        for ratio in [64u64, 128, 256, 512, 768, 1024] {
            let p = run_cell(n, rho_seconds, ratio, upd_per_sec);
            println!(
                "{:>5} {:>8} | {:>14} | {:>10.0} s | {:>14}",
                p.rho_seconds,
                p.rho_prime_ratio,
                fmt_bytes(p.bitmap_bytes as usize),
                p.avg_age_seconds,
                fmt_bytes(p.total_bytes as usize)
            );
            println!(
                "{},{},{:.1},{:.1},{:.1}",
                p.rho_seconds, p.rho_prime_ratio, p.bitmap_bytes, p.avg_age_seconds, p.total_bytes
            );
            points.push(p);
        }
        per_rho.push((rho_seconds, points));
    }
    csv_end();

    // Shape checks: bitmaps shrink and ages grow as rho' relaxes.
    for (rho, points) in &per_rho {
        assert!(
            points
                .windows(2)
                .all(|w| w[1].bitmap_bytes <= w[0].bitmap_bytes * 1.1),
            "rho={rho}: bitmap size must decline as rho' grows"
        );
        assert!(
            points
                .windows(2)
                .all(|w| w[1].avg_age_seconds >= w[0].avg_age_seconds * 0.9),
            "rho={rho}: signature age must grow with rho'"
        );
        let _ = points.last().map(|p| {
            assert!(p.rho_ticks > 0);
        });
    }
    println!("\nShape checks passed: per-period bitmaps shrink and signature ages grow with rho'.");
    println!("Paper reference: total bottoms out at 171 KB (rho = 1 s, rho' = 900 s).");
}
