//! Table 4: Performance of Standalone Queries & Updates — EMB− vs BAS.
//!
//! Runs the **real implementations** (BLS-over-BN254 signatures, SHA-1
//! Merkle digests, the paged trees) one transaction at a time, exactly like
//! the paper's standalone measurement: query construction time at the
//! server, update time (DA certification + server application), VO size,
//! and client verification time, for sf = 10⁻⁶ (point) and sf = 10⁻³.

use std::time::Instant;

use authdb_bench::{banner, csv_begin, csv_end, env_jobs, env_n, fmt_bytes, fmt_time};
use authdb_core::da::{DaConfig, DataAggregator, SigningMode};
use authdb_core::embsys::{EmbAggregator, EmbServer, EmbVerifier};
use authdb_core::qs::QueryServer;
use authdb_core::record::Schema;
use authdb_core::verify::Verifier;
use authdb_crypto::signer::{Keypair, SchemeKind};
use authdb_index::emb::DigestKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Cell {
    query: f64,
    update: f64,
    vo: usize,
    verify: f64,
}

fn main() {
    banner(
        "Table 4",
        "Standalone queries & updates: EMB- vs BAS (real crypto)",
    );
    let n = env_n();
    let jobs = env_jobs();
    let schema = Schema::new(4, 512);
    let reps = 10;
    println!("N = {n} records (AUTHDB_N), RecLen = 512, {jobs} signer threads, {reps} reps/cell");

    // ---------------- BAS system ----------------
    let mut rng = StdRng::seed_from_u64(4);
    let cfg = DaConfig {
        schema,
        scheme: SchemeKind::Bas,
        mode: SigningMode::Chained,
        rho: 1,
        rho_prime: 900,
        buffer_pages: 16384,
        fill: 2.0 / 3.0,
    };
    println!("\nBootstrapping BAS system ({n} BLS signatures)...");
    let t = Instant::now();
    let mut da = DataAggregator::new(cfg.clone(), &mut rng);
    let rows: Vec<Vec<i64>> = (0..n)
        .map(|i| vec![i as i64, rng.gen_range(0..1_000_000), 0, 0])
        .collect();
    let boot = da.bootstrap(rows.clone(), jobs);
    println!("  DA certified in {}", fmt_time(t.elapsed().as_secs_f64()));
    let mut qs = QueryServer::from_bootstrap(
        da.public_params(),
        schema,
        SigningMode::Chained,
        &boot,
        16384,
        2.0 / 3.0,
    );
    let verifier = Verifier::new(da.public_params(), schema, 1);
    let pp = da.public_params();

    let bas_cell =
        |qs: &mut QueryServer, da: &mut DataAggregator, span: usize, rng: &mut StdRng| {
            let mut query = 0.0;
            let mut verify = 0.0;
            let mut update = 0.0;
            let mut vo = 0;
            for _ in 0..reps {
                let lo = rng.gen_range(0..(n - span)) as i64;
                let hi = lo + span as i64 - 1;
                let t = Instant::now();
                let ans = qs.select_range(lo, hi).expect("chained mode");
                query += t.elapsed().as_secs_f64();
                vo = ans.vo_size(&pp);
                let t = Instant::now();
                verifier
                    .verify_selection(lo, hi, &ans, da.now(), true)
                    .expect("honest answer verifies");
                verify += t.elapsed().as_secs_f64();

                let rid = rng.gen_range(0..n as u64);
                let new_val = rng.gen_range(0..1_000_000);
                let t = Instant::now();
                for m in da.update_record(rid, vec![rid as i64, new_val, 0, 0]) {
                    qs.apply(&m);
                }
                update += t.elapsed().as_secs_f64();
            }
            Cell {
                query: query / reps as f64,
                update: update / reps as f64,
                vo,
                verify: verify / reps as f64,
            }
        };
    let span_point = 1usize;
    let span_range = (n / 1000).max(2);
    let bas_point = bas_cell(&mut qs, &mut da, span_point, &mut rng);
    let bas_range = bas_cell(&mut qs, &mut da, span_range, &mut rng);

    // ---------------- EMB- system ----------------
    println!("Bootstrapping EMB- system (SHA-1 digests, BLS-signed root)...");
    let mut rng2 = StdRng::seed_from_u64(4);
    let kp = Keypair::generate(SchemeKind::Bas, &mut rng2);
    let epp = kp.public_params();
    let mut eda = EmbAggregator::new(schema, DigestKind::Sha1, kp, 16384, 2.0 / 3.0);
    let (records, root) = eda.bootstrap(rows);
    let mut eserver =
        EmbServer::from_bootstrap(schema, DigestKind::Sha1, &records, root, 16384, 2.0 / 3.0);
    let everifier = EmbVerifier::new(epp.clone(), schema, DigestKind::Sha1);

    let emb_cell =
        |server: &mut EmbServer, da: &mut EmbAggregator, span: usize, rng: &mut StdRng| {
            let mut query = 0.0;
            let mut verify = 0.0;
            let mut update = 0.0;
            let mut vo = 0;
            for _ in 0..reps {
                let lo = rng.gen_range(0..(n - span)) as i64;
                let hi = lo + span as i64 - 1;
                let t = Instant::now();
                let ans = server.range_query(lo, hi);
                query += t.elapsed().as_secs_f64();
                vo = ans.vo_size(&epp);
                let t = Instant::now();
                everifier
                    .verify(lo, hi, &ans)
                    .expect("honest answer verifies");
                verify += t.elapsed().as_secs_f64();

                let rid = rng.gen_range(0..n as u64);
                let new_val = rng.gen_range(0..1_000_000);
                let t = Instant::now();
                let up = da
                    .update_record(rid, vec![rid as i64, new_val, 0, 0])
                    .unwrap();
                server.apply(&up);
                update += t.elapsed().as_secs_f64();
            }
            Cell {
                query: query / reps as f64,
                update: update / reps as f64,
                vo,
                verify: verify / reps as f64,
            }
        };
    let emb_point = emb_cell(&mut eserver, &mut eda, span_point, &mut rng);
    let emb_range = emb_cell(&mut eserver, &mut eda, span_range, &mut rng);

    // ---------------- report ----------------
    let print_block = |label: &str, emb: &Cell, bas: &Cell| {
        println!("\n{label}");
        println!("{:<22} | {:>12} | {:>12}", "operation", "EMB-", "BAS");
        println!("{:-<22}-+-{:->12}-+-{:->12}", "", "", "");
        println!(
            "{:<22} | {:>12} | {:>12}",
            "Query",
            fmt_time(emb.query),
            fmt_time(bas.query)
        );
        println!(
            "{:<22} | {:>12} | {:>12}",
            "Update",
            fmt_time(emb.update),
            fmt_time(bas.update)
        );
        println!(
            "{:<22} | {:>12} | {:>12}",
            "VO size",
            fmt_bytes(emb.vo),
            fmt_bytes(bas.vo)
        );
        println!(
            "{:<22} | {:>12} | {:>12}",
            "Verification",
            fmt_time(emb.verify),
            fmt_time(bas.verify)
        );
    };
    print_block(
        &format!("sf = 1e-6 ({span_point} record)  [paper: EMB- VO 440 B, BAS VO 20 B]"),
        &emb_point,
        &bas_point,
    );
    print_block(
        &format!("sf = 1e-3 ({span_range} records) [paper: EMB- VO 720 B, BAS VO 20 B]"),
        &emb_range,
        &bas_range,
    );

    csv_begin("selectivity,system,query_s,update_s,vo_bytes,verify_s");
    for (sel, sysname, c) in [
        ("1e-6", "emb", &emb_point),
        ("1e-6", "bas", &bas_point),
        ("1e-3", "emb", &emb_range),
        ("1e-3", "bas", &bas_range),
    ] {
        println!(
            "{sel},{sysname},{},{},{},{}",
            c.query, c.update, c.vo, c.verify
        );
    }
    csv_end();

    // Shape assertions mirroring the paper's Table 4.
    assert!(
        bas_point.vo < emb_point.vo,
        "BAS VO must be smaller than EMB- VO (point)"
    );
    assert!(
        bas_range.vo < emb_range.vo,
        "BAS VO must be smaller than EMB- VO (range)"
    );
    assert!(
        (bas_range.vo as f64 - bas_point.vo as f64).abs() < 64.0,
        "BAS VO must be selectivity-independent"
    );
    assert!(
        emb_range.verify < bas_range.verify,
        "EMB- verification (hashing) must beat BAS (pairings) at sf=1e-3"
    );
    println!("\nShape checks passed: BAS VO constant & smallest; EMB- verify cheaper at high selectivity.");
}
