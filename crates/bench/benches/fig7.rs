//! Figure 7: EMB− versus BAS under point queries (sf = 10⁻⁶).
//!
//! (a) Query/update response time versus Poisson arrival rate;
//! (b) response-time breakdown (lock wait / processing / verification) at a
//! light and a heavy rate. Both systems run in the discrete-event simulator
//! with the paper-calibrated cost model; the saturation asymmetry comes
//! purely from the EMB− exclusive root lock.

use authdb_bench::{banner, csv_begin, csv_end};
use authdb_sim::models::{run_load, System};
use authdb_sim::{CostModel, SystemModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sweep(q_records: usize, rates: &[f64], duration: f64) {
    let sys = SystemModel::paper_defaults();
    let cost = CostModel::pinned();
    println!(
        "\n{:>6} | {:>12} {:>12} | {:>12} {:>12}",
        "rate", "EMB- Q", "EMB- U", "BAS Q", "BAS U"
    );
    println!("{:->6}-+-{:->25}-+-{:->25}", "", "", "");
    csv_begin("rate,emb_q_ms,emb_u_ms,bas_q_ms,bas_u_ms,emb_q_lock_ms,bas_q_lock_ms");
    let mut crossover_seen = false;
    for &rate in rates {
        let mut rng = StdRng::seed_from_u64(rate as u64 + 7);
        let emb = run_load(
            System::Emb,
            rate,
            10.0,
            q_records,
            duration,
            &sys,
            &cost,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(rate as u64 + 7);
        let bas = run_load(
            System::Bas,
            rate,
            10.0,
            q_records,
            duration,
            &sys,
            &cost,
            &mut rng,
        );
        println!(
            "{rate:>6.0} | {:>10.1}ms {:>10.1}ms | {:>10.1}ms {:>10.1}ms",
            emb.query.mean_response * 1e3,
            emb.update.mean_response * 1e3,
            bas.query.mean_response * 1e3,
            bas.update.mean_response * 1e3,
        );
        println!(
            "{rate},{},{},{},{},{},{}",
            emb.query.mean_response * 1e3,
            emb.update.mean_response * 1e3,
            bas.query.mean_response * 1e3,
            bas.update.mean_response * 1e3,
            emb.query.mean_lock_wait * 1e3,
            bas.query.mean_lock_wait * 1e3,
        );
        if emb.query.mean_response > 2.0 * bas.query.mean_response {
            crossover_seen = true;
        }
    }
    csv_end();
    assert!(
        crossover_seen,
        "EMB- must fall far behind BAS somewhere in the sweep"
    );

    println!("\nBreakdown (mean per query, ms):");
    println!(
        "{:<10} {:>6} | {:>10} {:>12} {:>12}",
        "system", "rate", "locking", "processing", "verification"
    );
    csv_begin("system,rate,lock_ms,processing_ms,verify_ms");
    for (system, name) in [(System::Emb, "EMB-"), (System::Bas, "BAS")] {
        for rate in [rates[1], rates[rates.len() - 2]] {
            let mut rng = StdRng::seed_from_u64(rate as u64 + 7);
            let pt = run_load(
                system, rate, 10.0, q_records, duration, &sys, &cost, &mut rng,
            );
            println!(
                "{name:<10} {rate:>6.0} | {:>9.1}m {:>11.1}m {:>11.1}m",
                pt.query.mean_lock_wait * 1e3,
                pt.query.mean_processing * 1e3,
                pt.query.mean_verify * 1e3
            );
            println!(
                "{name},{rate},{},{},{}",
                pt.query.mean_lock_wait * 1e3,
                pt.query.mean_processing * 1e3,
                pt.query.mean_verify * 1e3
            );
        }
    }
    csv_end();
}

fn main() {
    banner(
        "Figure 7",
        "EMB- vs BAS, point queries (sf = 1e-6), Upd% = 10",
    );
    let duration = if authdb_bench::full_scale() {
        120.0
    } else {
        40.0
    };
    sweep(1, &[10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0], duration);
    println!("\nPaper shape: EMB- saturates near 50 jobs/s; BAS scales to 120 jobs/s.");
}
