//! Criterion micro-benchmarks for the cryptographic substrate — the
//! statistically rigorous companion to the Table 3 harness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use authdb_crypto::bls::BlsPrivateKey;
use authdb_crypto::bn254::{
    final_exponentiation, multi_miller_loop, pairing, Fr, G2Prepared, G1, G2,
};
use authdb_crypto::rsa::RsaPrivateKey;
use authdb_crypto::sha1::sha1;
use authdb_crypto::sha256::sha256;

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for len in [256usize, 512, 1024] {
        let buf = vec![0xA5u8; len];
        g.bench_function(format!("sha1_{len}B"), |b| b.iter(|| sha1(&buf)));
        g.bench_function(format!("sha256_{len}B"), |b| b.iter(|| sha256(&buf)));
    }
    g.finish();
}

fn bench_bn254(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("bn254");
    g.sample_size(10);
    let k = Fr::random(&mut rng);
    let p = G1::generator();
    let q = G2::generator();
    g.bench_function("g1_scalar_mul", |b| b.iter(|| p.mul_fr(&k)));
    let a = p.mul_scalar(&[5]);
    let b2 = p.mul_scalar(&[7]);
    g.bench_function("g1_add", |b| b.iter(|| a.add(&b2)));
    g.bench_function("pairing", |b| b.iter(|| pairing(&p, &q)));
    g.bench_function("hash_to_g1", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            G1::hash_to_curve(&i.to_be_bytes())
        })
    });
    g.finish();
}

/// The seed tree's reduced Tate pairing, reconstructed against public
/// APIs: a 254-bit Miller loop over multiples of P with per-step affine
/// inversions, and a square-and-multiply final exponentiation over the
/// 1270-bit `(p⁶+1)/r`. Kept as the "before" baseline the multi-pairing
/// engine is measured against.
mod tate_baseline {
    use authdb_crypto::bigint::BigUint;
    use authdb_crypto::bn254::curve::Affine;
    use authdb_crypto::bn254::fp::{FieldParams, Fp, FpParams, FrParams};
    use authdb_crypto::bn254::{Fp12, Fp2, G1, G2};
    use std::sync::OnceLock;

    fn hard_exponent() -> &'static Vec<u64> {
        static E: OnceLock<Vec<u64>> = OnceLock::new();
        E.get_or_init(|| {
            let p = BigUint::from_limbs(FpParams::MODULUS.to_vec());
            let r = BigUint::from_limbs(FrParams::MODULUS.to_vec());
            let p6 = p.mul(&p).mul(&p).mul(&p).mul(&p).mul(&p);
            let (q, rem) = p6.add(&BigUint::one()).divrem(&r);
            assert!(rem.is_zero());
            q.limbs().to_vec()
        })
    }

    type AffPt = Option<(Fp, Fp)>;

    fn eval_line(f: &Fp12, lambda: &Fp, t: &(Fp, Fp), xq: &Fp2, yq: &Fp2) -> Fp12 {
        let a = Fp2::from_fp(lambda.mul(&t.0).sub(&t.1));
        let b = xq.mul_fp(&lambda.neg());
        f.mul_by_line(&a, &b, yq)
    }

    fn double_step(f: &Fp12, t: &mut AffPt, xq: &Fp2, yq: &Fp2) -> Fp12 {
        let Some(pt) = *t else { return *f };
        if pt.1.is_zero() {
            *t = None;
            return *f;
        }
        let three_x2 = pt.0.square().mul(&Fp::from_u64(3));
        let lambda = three_x2.mul(&pt.1.double().invert().expect("y nonzero"));
        let out = eval_line(f, &lambda, &pt, xq, yq);
        let x3 = lambda.square().sub(&pt.0.double());
        let y3 = lambda.mul(&pt.0.sub(&x3)).sub(&pt.1);
        *t = Some((x3, y3));
        out
    }

    fn add_step(f: &Fp12, t: &mut AffPt, p: &(Fp, Fp), xq: &Fp2, yq: &Fp2) -> Fp12 {
        let Some(pt) = *t else {
            *t = Some(*p);
            return *f;
        };
        if pt.0 == p.0 {
            if pt.1 == p.1 {
                return double_step(f, t, xq, yq);
            }
            *t = None;
            return *f;
        }
        let lambda =
            p.1.sub(&pt.1)
                .mul(&p.0.sub(&pt.0).invert().expect("x1 != x2"));
        let out = eval_line(f, &lambda, &pt, xq, yq);
        let x3 = lambda.square().sub(&pt.0).sub(&p.0);
        let y3 = lambda.mul(&pt.0.sub(&x3)).sub(&pt.1);
        *t = Some((x3, y3));
        out
    }

    /// The seed's `pairing()`: Tate Miller loop plus a per-call
    /// square-and-multiply final exponentiation.
    pub fn pairing(p: &G1, q: &G2) -> Fp12 {
        let (Affine::Coords(px, py), Affine::Coords(qx, qy)) = (p.to_affine(), q.to_affine())
        else {
            return Fp12::one();
        };
        let p_aff = (px, py);
        let r_bits = FrParams::MODULUS;
        let nbits = 254;
        let mut f = Fp12::one();
        let mut t: AffPt = Some(p_aff);
        for i in (0..nbits - 1).rev() {
            f = f.square();
            f = double_step(&f, &mut t, &qx, &qy);
            if (r_bits[i / 64] >> (i % 64)) & 1 == 1 {
                f = add_step(&f, &mut t, &p_aff, &qx, &qy);
            }
        }
        let inv = f.invert().expect("nonzero");
        let easy = f.conjugate().mul(&inv);
        easy.pow(hard_exponent())
    }
}

/// The multi-pairing engine against independent pairings: a k-message
/// aggregate verification is 1 multi-Miller-loop + 1 final exponentiation
/// versus k+1 full `pairing()` calls. The acceptance bar is ≥2× at k=16.
fn bench_multi_pairing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut g = c.benchmark_group("multi_pairing");
    g.sample_size(10);

    let p = G1::generator();
    let q = G2::generator();
    g.bench_function("pairing_tate_seed_baseline", |b| {
        b.iter(|| tate_baseline::pairing(&p, &q))
    });
    g.bench_function("pairing_single", |b| b.iter(|| pairing(&p, &q)));

    // Fixed-key preparation, as in verification: prepared once, reused.
    let prep = G2Prepared::new(&q);
    let pa = p.to_affine();
    g.bench_function("pairing_single_prepared", |b| {
        b.iter(|| final_exponentiation(&multi_miller_loop(&[(&pa, &prep)])))
    });

    for k in [4usize, 16, 64] {
        // k+1 terms model verify_aggregate: the aggregate against the
        // generator plus the hash-sum against the public key — here k+1
        // random points against one prepared key.
        let points: Vec<_> = (0..=k)
            .map(|_| p.mul_fr(&Fr::random(&mut rng)).to_affine())
            .collect();
        let terms: Vec<_> = points.iter().map(|pt| (pt, &prep)).collect();
        g.bench_function(format!("multi_pairing_k{k}"), |b| {
            b.iter(|| final_exponentiation(&multi_miller_loop(&terms)))
        });
        g.bench_function(format!("independent_pairings_k{k}"), |b| {
            b.iter(|| {
                points
                    .iter()
                    .map(|pt| final_exponentiation(&multi_miller_loop(&[(pt, &prep)])))
                    .fold(0usize, |acc, f| acc + usize::from(f.is_one()))
            })
        });
    }
    g.finish();
}

fn bench_bls(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let sk = BlsPrivateKey::generate(&mut rng);
    let pk = sk.public_key().clone();
    let mut g = c.benchmark_group("bas");
    g.sample_size(10);
    g.bench_function("sign", |b| b.iter(|| sk.sign(b"record content")));
    let sig = sk.sign(b"record content");
    g.bench_function("verify", |b| b.iter(|| pk.verify(b"record content", &sig)));
    let msgs: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_be_bytes().to_vec()).collect();
    let sigs: Vec<_> = msgs.iter().map(|m| sk.sign(m)).collect();
    g.bench_function("aggregate_100", |b| {
        b.iter(|| authdb_crypto::bls::aggregate(&sigs))
    });
    let agg = authdb_crypto::bls::aggregate(&sigs);
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    g.bench_function("verify_aggregate_100", |b| {
        b.iter(|| pk.verify_aggregate(&refs, &agg))
    });
    g.finish();
}

/// Batched aggregate verification: one random-linear-combination
/// multi-pairing over K claims versus K independent aggregate checks.
fn bench_bls_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let sk = BlsPrivateKey::generate(&mut rng);
    let pk = sk.public_key().clone();
    let mut g = c.benchmark_group("bas_batch");
    g.sample_size(10);
    for k in [4usize, 16] {
        let data: Vec<(Vec<Vec<u8>>, authdb_crypto::bls::BlsSignature)> = (0..k)
            .map(|i| {
                let msgs: Vec<Vec<u8>> = (0..8u32)
                    .map(|j| format!("claim {i} msg {j}").into_bytes())
                    .collect();
                let sigs: Vec<_> = msgs.iter().map(|m| sk.sign(m)).collect();
                (msgs, authdb_crypto::bls::aggregate(&sigs))
            })
            .collect();
        let claims: Vec<(&[Vec<u8>], &authdb_crypto::bls::BlsSignature)> =
            data.iter().map(|(m, s)| (m.as_slice(), s)).collect();
        g.bench_function(format!("verify_aggregate_x{k}_sequential"), |b| {
            b.iter(|| {
                data.iter().all(|(msgs, agg)| {
                    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
                    pk.verify_aggregate(&refs, agg)
                })
            })
        });
        g.bench_function(format!("verify_aggregate_batch_{k}"), |b| {
            b.iter(|| pk.verify_aggregate_batch(&claims, &mut rng))
        });
    }
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let sk = RsaPrivateKey::generate(1024, &mut rng);
    let pk = sk.public_key().clone();
    let mut g = c.benchmark_group("condensed_rsa");
    g.sample_size(20);
    g.bench_function("sign_1024", |b| b.iter(|| sk.sign(b"record content")));
    let sig = sk.sign(b"record content");
    g.bench_function("verify_1024", |b| {
        b.iter(|| pk.verify(b"record content", &sig))
    });
    let sigs: Vec<_> = (0..100u32).map(|i| sk.sign(&i.to_be_bytes())).collect();
    g.bench_function("condense_100", |b| {
        b.iter_batched(
            || sigs.clone(),
            |s| authdb_crypto::rsa::condense(&pk, &s),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_bn254,
    bench_multi_pairing,
    bench_bls,
    bench_bls_batch,
    bench_rsa
);
criterion_main!(benches);
