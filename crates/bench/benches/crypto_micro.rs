//! Criterion micro-benchmarks for the cryptographic substrate — the
//! statistically rigorous companion to the Table 3 harness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use authdb_crypto::bls::BlsPrivateKey;
use authdb_crypto::bn254::{pairing, Fr, G1, G2};
use authdb_crypto::rsa::RsaPrivateKey;
use authdb_crypto::sha1::sha1;
use authdb_crypto::sha256::sha256;

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for len in [256usize, 512, 1024] {
        let buf = vec![0xA5u8; len];
        g.bench_function(format!("sha1_{len}B"), |b| b.iter(|| sha1(&buf)));
        g.bench_function(format!("sha256_{len}B"), |b| b.iter(|| sha256(&buf)));
    }
    g.finish();
}

fn bench_bn254(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("bn254");
    g.sample_size(10);
    let k = Fr::random(&mut rng);
    let p = G1::generator();
    let q = G2::generator();
    g.bench_function("g1_scalar_mul", |b| b.iter(|| p.mul_fr(&k)));
    let a = p.mul_scalar(&[5]);
    let b2 = p.mul_scalar(&[7]);
    g.bench_function("g1_add", |b| b.iter(|| a.add(&b2)));
    g.bench_function("pairing", |b| b.iter(|| pairing(&p, &q)));
    g.bench_function("hash_to_g1", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            G1::hash_to_curve(&i.to_be_bytes())
        })
    });
    g.finish();
}

fn bench_bls(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let sk = BlsPrivateKey::generate(&mut rng);
    let pk = sk.public_key().clone();
    let mut g = c.benchmark_group("bas");
    g.sample_size(10);
    g.bench_function("sign", |b| b.iter(|| sk.sign(b"record content")));
    let sig = sk.sign(b"record content");
    g.bench_function("verify", |b| b.iter(|| pk.verify(b"record content", &sig)));
    let msgs: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_be_bytes().to_vec()).collect();
    let sigs: Vec<_> = msgs.iter().map(|m| sk.sign(m)).collect();
    g.bench_function("aggregate_100", |b| {
        b.iter(|| authdb_crypto::bls::aggregate(&sigs))
    });
    let agg = authdb_crypto::bls::aggregate(&sigs);
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    g.bench_function("verify_aggregate_100", |b| {
        b.iter(|| pk.verify_aggregate(&refs, &agg))
    });
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let sk = RsaPrivateKey::generate(1024, &mut rng);
    let pk = sk.public_key().clone();
    let mut g = c.benchmark_group("condensed_rsa");
    g.sample_size(20);
    g.bench_function("sign_1024", |b| b.iter(|| sk.sign(b"record content")));
    let sig = sk.sign(b"record content");
    g.bench_function("verify_1024", |b| {
        b.iter(|| pk.verify(b"record content", &sig))
    });
    let sigs: Vec<_> = (0..100u32)
        .map(|i| sk.sign(&i.to_be_bytes()))
        .collect();
    g.bench_function("condense_100", |b| {
        b.iter_batched(
            || sigs.clone(),
            |s| authdb_crypto::rsa::condense(&pk, &s),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_hashing, bench_bn254, bench_bls, bench_rsa);
criterion_main!(benches);
