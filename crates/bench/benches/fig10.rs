//! Figure 10: SigCache effectiveness — response time vs cache size,
//! Eager vs Lazy refresh, Upd% ∈ {10, 40}.
//!
//! The runtime [`SigCache`] processes a real transaction trace over the
//! record positions (range queries around sf = 10⁻³ and single-record
//! updates); every aggregation op is counted and converted to CPU service
//! time with the paper's ECC-addition cost, then the trace is replayed
//! through the discrete-event server (4 cores, 50 jobs/s Poisson arrivals)
//! to obtain contended response times.

use authdb_bench::{banner, csv_begin, csv_end, env_n};
use authdb_core::sigcache::{select_cache, NodeId, RefreshStrategy, SigCache, SigTreeAnalysis};
use authdb_crypto::signer::{Keypair, SchemeKind, Signature};
use authdb_sim::{des, CostModel, SimConfig, Step, TxnKind, TxnSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One point: mean query/update response at a cache size.
struct Point {
    cache_kb: f64,
    query_ms: f64,
    update_ms: f64,
}

/// Query-cardinality distribution: truncated harmonic over `1..=8·(N/1000)`
/// (the paper's "skewed" mix around its default selectivity — its Figure 6
/// reports ~1,100 expected aggregation ops per query for this shape, and
/// short-window uniform workloads leave dyadic-edge work that no cache can
/// remove; see EXPERIMENTS.md).
fn cardinality_probs(n: usize) -> Vec<f64> {
    // Cap chosen so the 50 jobs/s default load runs near saturation,
    // the regime the paper describes ("heavily loaded for BAS"): queueing
    // then amplifies the cache's service-time savings into the reported
    // response-time drops.
    let cap = (24 * (n / 1000)).clamp(1, n);
    let mut probs = authdb_workload::cardinality::harmonic(cap);
    probs.resize(n, 0.0);
    probs
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    n: usize,
    leaves: &mut [Signature],
    kp: &Keypair,
    selection: &[NodeId],
    strategy: RefreshStrategy,
    upd_pct: f64,
    rate: f64,
    duration: f64,
    cost: &CostModel,
) -> Point {
    let pp = kp.public_params();
    let mut cache = SigCache::build(pp.clone(), leaves, selection, strategy);
    let cache_kb = selection.len() as f64 * 20.0 / 1024.0; // paper's 20-B sigs

    // Identical arrival/query trace across every point: the comparison
    // isolates the cache effect, not Poisson noise.
    let mut rng = StdRng::seed_from_u64(1000);
    let sampler = authdb_workload::cardinality::CardinalitySampler::new(&cardinality_probs(n));

    // Build the trace: per-transaction service times from real op counts.
    let mut specs = Vec::new();
    let mut t = 0.0;
    let mut version = 0u64;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate;
        if t >= duration {
            break;
        }
        let is_update = rng.gen_bool(upd_pct / 100.0);
        // Server service = Table 4's calibrated BAS cost with its modelled
        // aggregation term replaced by the *actual* op count from the cache.
        let service = authdb_sim::models::ServiceTimes::paper_table4();
        if is_update {
            let pos = rng.gen_range(0..n);
            let before_u = cache.stats().update_ops;
            let old = leaves[pos].clone();
            version += 1;
            let new = kp.sign(format!("leaf {pos} v{version}").as_bytes());
            cache.on_update(pos, &old, &new);
            leaves[pos] = new;
            let ops = cache.stats().update_ops - before_u;
            let base = service.bas_update.0 + ops as f64 * cost.ecc_add;
            specs.push(TxnSpec {
                at: t,
                kind: TxnKind::Update,
                steps: vec![
                    Step::Delay(cost.bas_sign),
                    Step::Use(des::Res::Cpu, base * 0.5),
                    Step::Use(des::Res::Disk, base * 0.5),
                ],
            });
        } else {
            let q = sampler.sample(&mut rng).min(n);
            let lo = rng.gen_range(0..=(n - q));
            let before_q = cache.stats().query_ops;
            let (_, _) = cache.aggregate_range(leaves, lo, lo + q - 1);
            let ops = cache.stats().query_ops - before_q;
            // Non-aggregation part of the calibrated query service.
            let noncrypto = service.bas_query.0 + service.bas_query.1 * (q as f64 - 1.0)
                - (q as f64 - 1.0) * cost.ecc_add;
            let total = noncrypto.max(0.0) + ops as f64 * cost.ecc_add;
            specs.push(TxnSpec {
                at: t,
                kind: TxnKind::Query,
                steps: vec![
                    Step::Use(des::Res::Cpu, total * 0.5),
                    Step::Use(des::Res::Disk, total * 0.5),
                    Step::Verify(cost.bas_verify_base + q as f64 * cost.bas_verify_per_msg),
                ],
            });
        }
    }
    let results = des::run(SimConfig::default(), specs);
    let q = des::summarize(&results, TxnKind::Query);
    let u = des::summarize(&results, TxnKind::Update);
    Point {
        cache_kb,
        query_ms: q.mean_response * 1e3,
        update_ms: u.mean_response * 1e3,
    }
}

fn main() {
    banner(
        "Figure 10",
        "SigCache: response time vs cache size, Eager vs Lazy",
    );
    // The queueing regime of the paper's Figure 10 (heavily loaded at
    // 50 jobs/s) needs the full 2^20-record tree; mock signatures keep the
    // leaf-signing cost trivial at this scale.
    let n = 1usize << 20;
    let _ = env_n();
    let rate = 50.0;
    let duration = if authdb_bench::full_scale() {
        120.0
    } else {
        60.0
    };
    let cost = CostModel::pinned();
    println!(
        "N = {n} positions, 50 jobs/s, skewed cardinalities, ECC add = {:.2} µs",
        cost.ecc_add * 1e6
    );

    let mut rng = StdRng::seed_from_u64(10);
    let kp = Keypair::generate(SchemeKind::Mock, &mut rng);
    println!("Signing {n} leaf signatures (mock scheme for scale)...");
    let base_leaves: Vec<Signature> = (0..n)
        .map(|i| kp.sign(format!("leaf {i} v0").as_bytes()))
        .collect();

    // Cardinality distribution matching the workload for Algorithm 1.
    let probs = cardinality_probs(n);
    let analysis = SigTreeAnalysis::new(&probs);
    let full_selection = select_cache(&analysis, 2048);
    println!(
        "Algorithm 1 chose {} nodes (expected cost {:.0} -> {:.0} ops)",
        full_selection.chosen.len(),
        full_selection.base_cost,
        full_selection
            .cost_curve
            .last()
            .copied()
            .unwrap_or(full_selection.base_cost)
    );

    for upd_pct in [10.0, 40.0] {
        println!("\nUpd% = {upd_pct}:");
        println!(
            "{:>9} | {:>11} {:>11} | {:>11} {:>11}",
            "cache KB", "Eager Q", "Eager U", "Lazy Q", "Lazy U"
        );
        println!("{:->9}-+-{:->23}-+-{:->23}", "", "", "");
        csv_begin("upd_pct,cache_kb,eager_q_ms,eager_u_ms,lazy_q_ms,lazy_u_ms");
        let mut first_q = None;
        let mut last_q = None;
        let max_nodes = full_selection.chosen.len();
        let mut node_counts = vec![0usize, 64, 128, 256, 512, 1024, max_nodes];
        node_counts.retain(|&c| c <= max_nodes);
        node_counts.dedup();
        for nodes in node_counts {
            let selection: Vec<NodeId> =
                full_selection.chosen.iter().copied().take(nodes).collect();
            let mut leaves = base_leaves.clone();
            let eager = run_point(
                n,
                &mut leaves,
                &kp,
                &selection,
                RefreshStrategy::Eager,
                upd_pct,
                rate,
                duration,
                &cost,
            );
            let mut leaves = base_leaves.clone();
            let lazy = run_point(
                n,
                &mut leaves,
                &kp,
                &selection,
                RefreshStrategy::Lazy,
                upd_pct,
                rate,
                duration,
                &cost,
            );
            println!(
                "{:>9.1} | {:>9.1}ms {:>9.1}ms | {:>9.1}ms {:>9.1}ms",
                eager.cache_kb, eager.query_ms, eager.update_ms, lazy.query_ms, lazy.update_ms
            );
            println!(
                "{upd_pct},{:.1},{:.2},{:.2},{:.2},{:.2}",
                eager.cache_kb, eager.query_ms, eager.update_ms, lazy.query_ms, lazy.update_ms
            );
            if nodes == 0 {
                first_q = Some((eager.query_ms, lazy.query_ms));
            }
            last_q = Some((
                eager.query_ms,
                lazy.query_ms,
                lazy.update_ms,
                eager.update_ms,
            ));
        }
        csv_end();
        let (e0, l0) = first_q.unwrap();
        let (e1, l1, _lu, _eu) = last_q.unwrap();
        println!(
            "Query response reduction at max cache: eager {:.0}%, lazy {:.0}% (paper: ~30% at 40 KB)",
            (1.0 - e1 / e0) * 100.0,
            (1.0 - l1 / l0) * 100.0
        );
        assert!(e1 < e0 && l1 < l0, "caching must reduce query response");
    }
    println!("\nPaper shape: both strategies improve with cache size; Lazy >= Eager, more so at Upd%=40.");
}
