//! Table 3: Costs of Cryptographic Primitives.
//!
//! Measures this workspace's real implementations of the operations in the
//! paper's Table 3: BAS (BLS over BN254) individual sign/verify and
//! 1000-signature aggregation/verification; Condensed RSA-1024 ditto; and
//! SHA hashing of 256/512/1024-byte messages. Printed side by side with the
//! paper's "Current" (2009 quad-core) column.

use std::time::Instant;

use authdb_bench::{banner, csv_begin, csv_end, fmt_time};
use authdb_crypto::signer::{Keypair, SchemeKind, Signature};
use authdb_crypto::{sha1::sha1, sha256::sha256};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Row {
    name: &'static str,
    paper: &'static str,
    measured: f64,
}

fn measure_scheme(
    kind: SchemeKind,
    rng: &mut StdRng,
    rows: &mut Vec<Row>,
    names: [&'static str; 4],
    paper: [&'static str; 4],
) {
    let kp = Keypair::generate(kind, rng);
    let pp = kp.public_params();
    let msgs: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_be_bytes().to_vec()).collect();

    // Individual signing (amortized over a few reps).
    let reps = 20;
    let t = Instant::now();
    for m in msgs.iter().take(reps) {
        std::hint::black_box(kp.sign(m));
    }
    rows.push(Row {
        name: names[0],
        paper: paper[0],
        measured: t.elapsed().as_secs_f64() / reps as f64,
    });

    let sig = kp.sign(&msgs[0]);
    let t = Instant::now();
    for _ in 0..reps {
        assert!(pp.verify(&msgs[0], &sig));
    }
    rows.push(Row {
        name: names[1],
        paper: paper[1],
        measured: t.elapsed().as_secs_f64() / reps as f64,
    });

    // 1000-signature aggregate.
    let sigs: Vec<Signature> = msgs.iter().map(|m| kp.sign(m)).collect();
    let t = Instant::now();
    let agg = pp.aggregate_all(&sigs);
    rows.push(Row {
        name: names[2],
        paper: paper[2],
        measured: t.elapsed().as_secs_f64(),
    });

    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    let t = Instant::now();
    assert!(pp.verify_aggregate(&refs, &agg));
    rows.push(Row {
        name: names[3],
        paper: paper[3],
        measured: t.elapsed().as_secs_f64(),
    });
}

fn main() {
    banner(
        "Table 3",
        "Costs of Cryptographic Primitives (paper 'Current' vs ours)",
    );
    let mut rng = StdRng::seed_from_u64(3);
    let mut rows = Vec::new();

    measure_scheme(
        SchemeKind::Bas,
        &mut rng,
        &mut rows,
        [
            "BAS signing",
            "BAS verification",
            "BAS 1000-sig aggregation",
            "BAS 1000-sig agg. verification",
        ],
        ["1.5 ms", "40.22 ms", "9.06 ms", "331.349 ms"],
    );
    measure_scheme(
        SchemeKind::CondensedRsa,
        &mut rng,
        &mut rows,
        [
            "Condensed-RSA signing",
            "Condensed-RSA verification",
            "C-RSA 1000-sig aggregation",
            "C-RSA 1000-sig agg. verification",
        ],
        ["6.06 ms", "0.087 ms", "0.078 ms", "0.094 ms"],
    );

    // SHA hashing at the paper's three message sizes (SHA-1 is the paper's
    // hash; SHA-256 is our default — both reported).
    for (len, paper) in [(256usize, "1.35 µs"), (512, "2.28 µs"), (1024, "4.2 µs")] {
        let buf = vec![0xCDu8; len];
        let reps = 200_000;
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(sha1(&buf));
        }
        rows.push(Row {
            name: match len {
                256 => "SHA-1, 256-byte message",
                512 => "SHA-1, 512-byte message",
                _ => "SHA-1, 1024-byte message",
            },
            paper,
            measured: t.elapsed().as_secs_f64() / reps as f64,
        });
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(sha256(&buf));
        }
        rows.push(Row {
            name: match len {
                256 => "SHA-256, 256-byte message",
                512 => "SHA-256, 512-byte message",
                _ => "SHA-256, 1024-byte message",
            },
            paper: "-",
            measured: t.elapsed().as_secs_f64() / reps as f64,
        });
    }

    println!(
        "\n{:<36} | {:>12} | {:>12}",
        "Operation", "Paper (2009)", "Measured"
    );
    println!("{:-<36}-+-{:->12}-+-{:->12}", "", "", "");
    csv_begin("operation,paper,measured_seconds");
    for r in &rows {
        println!(
            "{:<36} | {:>12} | {:>12}",
            r.name,
            r.paper,
            fmt_time(r.measured)
        );
        println!("\"{}\",\"{}\",{:e}", r.name, r.paper, r.measured);
    }
    csv_end();

    // Shape assertions mirroring Section 5.2's findings.
    let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap().measured;
    assert!(
        get("BAS verification") > get("BAS signing"),
        "pairing verification must dominate signing"
    );
    assert!(
        get("Condensed-RSA verification") < get("BAS verification"),
        "RSA verify must be much cheaper than BAS verify"
    );
    assert!(
        get("SHA-1, 512-byte message") < get("BAS signing"),
        "hashing must be orders cheaper than signing"
    );
    println!(
        "\nShape checks passed: BAS verify > BAS sign; RSA verify << BAS verify; hash << sign."
    );
}
