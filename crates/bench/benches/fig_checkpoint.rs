//! fig_checkpoint: certified checkpoints bound the two unbounded histories.
//!
//! Before this PR both verification-relevant histories grew without bound:
//! a client joining at epoch N had to verify the whole `EpochTransition`
//! chain from genesis (O(N) signatures), and the per-shard `UpdateSummary`
//! log — which the 2ρ-recency gate forces into answers for old records —
//! grew with total history. This bench measures what DA-certified
//! checkpoints bought at history lengths 10²–10⁵.
//!
//! Part 1 (epoch chain): a deployment rebalances N times. The chain-walking
//! client (`EpochView::observe`) pays one signature per transition; the
//! checkpoint client (`EpochView::from_bootstrap`) consumes a three-artifact
//! bundle — map, latest transition, epoch checkpoint — whose wire size is
//! asserted byte-identical at every N, and whose pinned view is asserted
//! equal to the walked one. O(1) signatures regardless of N.
//!
//! Part 2 (summary log): a DA publishes H summary periods with a live
//! update stream, checkpointing every 64 periods (keep 32). Resident
//! summaries are asserted ≤ 96 (interval + keep) at every point of the
//! whole run — flat, bounded by the checkpoint interval instead of H —
//! while a never-compacted twin's answers attach Θ(H) summaries for
//! never-updated records. Verify cost per answer is reported for both;
//! the checkpointed answers are asserted to stay ≤ 96 attached summaries
//! and to keep verifying at every H.
//!
//! Acceptance bar: constant bootstrap-bundle bytes across N = 10²..10⁵,
//! pinned view == walked view, retained summaries ≤ 96 across H = 10²..10⁵,
//! and every checkpoint-anchored answer verifies.

use std::time::Instant;

use authdb_bench::{banner, csv_begin, csv_end, fmt_time};
use authdb_core::da::{DaConfig, DataAggregator, SigningMode};
use authdb_core::qs::QueryServer;
use authdb_core::record::Schema;
use authdb_core::shard::{EpochBootstrap, EpochTransition, RebalancePlan, ShardedAggregator};
use authdb_core::verify::{EpochView, Verifier};
use authdb_crypto::signer::SchemeKind;
use authdb_wire::WireEncode;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// History lengths (epochs for part 1, summary periods for part 2).
const POINTS: [usize; 4] = [100, 1_000, 10_000, 100_000];
/// Checkpoint every this many summary periods...
const CKPT_EVERY: usize = 64;
/// ...keeping this many trailing summaries as the anchored run.
const KEEP: usize = 32;
/// Resident-summary ceiling implied by the schedule.
const FLAT_BOUND: usize = CKPT_EVERY + KEEP;
/// Timed repetitions per measurement.
const REPS: usize = 32;

fn cfg() -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        rho: 10,
        // Recertification out of frame: the subject is history length.
        rho_prime: u64::MAX / 4,
        buffer_pages: 256,
        fill: 2.0 / 3.0,
    }
}

/// Part 1: epoch-chain bootstrap — O(N) walk vs O(1) certified bundle.
fn epoch_chain() {
    println!("\n== epoch chain: client bootstrap at epoch N ==");
    println!(
        "{:>7} | {:>11} | {:>11} | {:>7} | {:>8}",
        "epochs", "walk", "bootstrap", "ratio", "bundle"
    );
    println!(
        "{:->7}-+-{:->11}-+-{:->11}-+-{:->7}-+-{:->8}",
        "", "", "", "", ""
    );
    csv_begin("epochs,walk_us,bootstrap_us,ratio,bundle_bytes");
    let mut rng = StdRng::seed_from_u64(4242);
    let mut sa = ShardedAggregator::new(cfg(), vec![], &mut rng);
    sa.bootstrap((0..4i64).map(|i| vec![i * 10, i]).collect(), 2);
    let pp = sa.public_params();
    let genesis = sa.map().clone();
    let mut transitions: Vec<EpochTransition> = Vec::new();
    let mut bundle_bytes: Option<usize> = None;
    for &n in &POINTS {
        while transitions.len() < n {
            let plan = if transitions.len().is_multiple_of(2) {
                RebalancePlan::Split { shard: 0, at: 20 }
            } else {
                RebalancePlan::Merge { left: 0 }
            };
            transitions.push(sa.rebalance(plan, 2).transition);
        }
        // The legacy client: genesis + one signature per transition.
        let t = Instant::now();
        let mut walked = EpochView::genesis(&genesis, &pp).expect("genesis view");
        walked
            .observe(&transitions, sa.map(), &pp)
            .expect("chain walk");
        let walk_us = t.elapsed().as_secs_f64() * 1e6;
        // The checkpoint client: three artifacts, whatever N is.
        let boot = EpochBootstrap {
            map: sa.map().clone(),
            transition: transitions.last().cloned(),
            checkpoint: sa.epoch_checkpoint().cloned(),
        };
        let bytes = boot.encode().len();
        match bundle_bytes {
            None => bundle_bytes = Some(bytes),
            Some(b) => assert_eq!(
                b, bytes,
                "acceptance: bootstrap bundle must be constant-size, grew at N={n}"
            ),
        }
        let t = Instant::now();
        let mut pinned = EpochView::from_bootstrap(&boot, &pp).expect("O(1) pin");
        for _ in 1..REPS {
            pinned = EpochView::from_bootstrap(&boot, &pp).expect("O(1) pin");
        }
        let boot_us = t.elapsed().as_secs_f64() * 1e6 / REPS as f64;
        assert_eq!(
            pinned, walked,
            "acceptance: checkpoint-pinned view must equal the chain-walked view at N={n}"
        );
        let ratio = walk_us / boot_us;
        println!(
            "{n:>7} | {:>11} | {:>11} | {ratio:>6.0}x | {bytes:>7}B",
            fmt_time(walk_us * 1e-6),
            fmt_time(boot_us * 1e-6)
        );
        println!("{n},{walk_us:.1},{boot_us:.3},{ratio:.1},{bytes}");
    }
    csv_end();
}

/// Part 2: summary-log compaction — resident memory and verify cost.
fn summary_log() {
    println!("\n== summary log: verify cost and resident summaries at history H ==");
    println!(
        "{:>7} | {:>9} | {:>11} | {:>9} | {:>11}",
        "periods", "retained", "ckpt-verify", "full-run", "full-verify"
    );
    println!(
        "{:->7}-+-{:->9}-+-{:->11}-+-{:->9}-+-{:->11}",
        "", "", "", "", ""
    );
    csv_begin("periods,retained,ckpt_verify_us,full_run,full_verify_us");
    let mk = || {
        let mut rng = StdRng::seed_from_u64(99);
        let mut da = DataAggregator::new(cfg(), &mut rng);
        let boot = da.bootstrap((0..256i64).map(|i| vec![i, i]).collect(), 2);
        let qs = QueryServer::from_bootstrap(
            da.public_params(),
            da.config().schema,
            SigningMode::Chained,
            &boot,
            256,
            2.0 / 3.0,
        );
        (da, qs)
    };
    let (mut da, mut qs) = mk(); // checkpointed
    let (mut fda, mut fqs) = mk(); // never-compacted twin
    let v = Verifier::new(da.public_params(), da.config().schema, da.config().rho);
    let fv = Verifier::new(fda.public_params(), fda.config().schema, fda.config().rho);
    let mut period = 0usize;
    let mut max_retained = 0usize;
    for &h in &POINTS {
        while period < h {
            // Rids 128.. take the update stream; rids 0..128 stay pristine
            // so their freshness run reaches all the way back to the cut.
            let rid = 128 + (period as u64 % 128);
            let key = rid as i64;
            for side in [(&mut da, &mut qs), (&mut fda, &mut fqs)] {
                side.0.advance_clock(2);
                for m in side.0.update_record(rid, vec![key, period as i64]) {
                    side.1.apply(&m);
                }
                side.0.advance_clock(8);
                if let Some((s, recerts)) = side.0.maybe_publish_summary() {
                    side.1.add_summary(s);
                    for m in recerts {
                        side.1.apply(&m);
                    }
                }
            }
            period += 1;
            if period.is_multiple_of(CKPT_EVERY) {
                if let Some(c) = da.checkpoint_summaries(KEEP) {
                    qs.apply_checkpoint(c);
                }
            }
            max_retained = max_retained.max(da.summary_log().len());
            assert!(
                da.summary_log().len() <= FLAT_BOUND,
                "acceptance: resident summaries must stay <= {FLAT_BOUND}, \
                 got {} at period {period}",
                da.summary_log().len()
            );
        }
        // Query the pristine prefix: the oldest versions in the system,
        // exactly the records whose freshness run is longest.
        let now = da.now();
        let ans = qs.select_range(0, 31).expect("chained mode");
        assert!(
            ans.summaries.len() <= FLAT_BOUND,
            "checkpoint-anchored answer attached {} summaries at H={h}",
            ans.summaries.len()
        );
        let t = Instant::now();
        for _ in 0..REPS {
            v.verify_selection(0, 31, &ans, now, true)
                .expect("checkpoint-anchored answer verifies");
        }
        let ckpt_us = t.elapsed().as_secs_f64() * 1e6 / REPS as f64;
        let fans = fqs.select_range(0, 31).expect("chained mode");
        let full_run = fans.summaries.len();
        let t = Instant::now();
        for _ in 0..REPS.min(8) {
            fv.verify_selection(0, 31, &fans, now, true)
                .expect("full-history answer verifies");
        }
        let full_us = t.elapsed().as_secs_f64() * 1e6 / REPS.min(8) as f64;
        println!(
            "{h:>7} | {:>9} | {:>11} | {full_run:>9} | {:>11}",
            da.summary_log().len(),
            fmt_time(ckpt_us * 1e-6),
            fmt_time(full_us * 1e-6)
        );
        println!(
            "{h},{},{ckpt_us:.2},{full_run},{full_us:.2}",
            da.summary_log().len()
        );
    }
    csv_end();
    println!(
        "\nmax resident summaries over the whole {}-period run: {max_retained} \
         (bound {FLAT_BOUND})",
        POINTS[POINTS.len() - 1]
    );
}

fn main() {
    banner(
        "fig_checkpoint",
        "certified checkpoints: O(1) client bootstrap, flat summary-log memory",
    );
    println!(
        "Mock scheme. Part 1 rebalances a deployment N times and compares the \
         chain-walking client against the three-artifact certified bundle; part 2 \
         publishes H summary periods checkpointing every {CKPT_EVERY} (keep {KEEP})."
    );
    epoch_chain();
    summary_log();
    println!(
        "\nAcceptance holds: constant bundle bytes and pinned==walked across \
         N=10^2..10^5; resident summaries <= {FLAT_BOUND} across H=10^2..10^5; \
         every checkpoint-anchored answer verified."
    );
}
