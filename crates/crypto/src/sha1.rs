//! SHA-1 (FIPS 180) — the 160-bit one-way hash the paper's schemes use.
//!
//! SHA-1 is cryptographically broken for collision resistance today; we
//! implement it because the paper's digest/signature size arithmetic (160-bit
//! digests matching 160-bit ECC signatures, Section 3.2) is built around it.
//! Production deployments should prefer [`crate::sha256`].

/// Size of a SHA-1 digest in bytes (160 bits).
pub const DIGEST_LEN: usize = 20;

/// A 160-bit SHA-1 digest.
pub type Digest = [u8; DIGEST_LEN];

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        // Appending the length must not be double-counted in total_len, but
        // since we finalize immediately it does not matter.
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split at {split}");
        }
    }
}
