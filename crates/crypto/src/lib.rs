#![forbid(unsafe_code)]
//! # authdb-crypto
//!
//! From-scratch cryptographic substrate for the `authdb` reproduction of
//! *Scalable Verification for Outsourced Dynamic Databases* (Pang, Zhang,
//! Mouratidis, VLDB 2009):
//!
//! * [`bigint`] — arbitrary-precision arithmetic (Knuth division, Montgomery
//!   exponentiation, Miller-Rabin).
//! * [`sha1`] / [`sha256`] — the one-way hashes (the paper's 160-bit digests
//!   and the modern default, respectively).
//! * [`rsa`] — RSA + Condensed-RSA signature aggregation (Table 3 baseline).
//! * [`bn254`] — BN254 field tower, G1/G2 with wNAF scalar multiplication,
//!   and a batched ate-pairing engine: `G2Prepared` line precomputation,
//!   `multi_miller_loop` accumulation, and a shared cyclotomic final
//!   exponentiation (see the [`bn254`] module docs for the pipeline).
//! * [`bls`] — BLS signatures over BN254 with aggregation: the paper's
//!   Bilinear Aggregate Signature ("BAS") scheme. Verification is a single
//!   multi-pairing against the precomputed public key and generator.
//! * [`merkle`] — Merkle hash tree primitives (Section 2.1).
//! * [`signer`] — the pluggable aggregate-signature abstraction the rest of
//!   the workspace consumes.

pub mod bigint;
pub mod bls;
pub mod bn254;
pub mod merkle;
pub mod rsa;
pub mod sha1;
pub mod sha256;
pub mod signer;
