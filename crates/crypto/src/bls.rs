//! BLS signatures over BN254 with aggregation — the paper's **Bilinear
//! Aggregate Signature (BAS)** scheme [Boneh-Lynn-Shacham / Boneh-Gentry-
//! Lynn-Shacham].
//!
//! * secret key `x ∈ Fr`, public key `X = x·g2 ∈ G2`
//! * `sign(m) = x·H(m) ∈ G1` with `H` hashing to the curve
//! * `verify(m, σ): e(σ, g2) == e(H(m), X)`
//! * aggregation is G1 addition — *any set of message-signature pairs can be
//!   combined in arbitrary order into a single signature* (Section 2.1), and
//!   components can also be **subtracted** ("adding the inverse", which
//!   Section 4.3's eager cache refresh relies on).
//! * `verify_aggregate([m_i], σ): e(σ, g2) == e(Σ H(m_i), X)` — sound for a
//!   single signer, which is exactly the paper's data-aggregator setting.
//!
//! Verification runs on the batched multi-pairing engine: both pairings of
//! the check are rewritten as the product `e(σ, g2)·e(-ΣH(m_i), X) == 1`,
//! evaluated with **one** Miller loop accumulation and **one** final
//! exponentiation. The generator's Miller-loop lines are precomputed once
//! per process and the public key's once per key ([`G2Prepared`]), shared
//! by every clone of the key — so steady-state verification never pays
//! G2 preparation again.

use std::sync::{Arc, OnceLock};

use crate::bn254::pairing::{final_exponentiation, multi_miller_loop, G2Prepared};
use crate::bn254::{Fr, G1, G2};

/// The process-wide prepared G2 generator.
fn prepared_generator() -> &'static G2Prepared {
    static GEN: OnceLock<G2Prepared> = OnceLock::new();
    GEN.get_or_init(|| G2Prepared::new(&G2::generator()))
}

/// BLS private key.
#[derive(Clone)]
pub struct BlsPrivateKey {
    sk: Fr,
    pk: BlsPublicKey,
}

/// BLS public key: a G2 point plus its cached Miller-loop preparation
/// (built once at key construction, shared across clones via `Arc`).
#[derive(Clone)]
pub struct BlsPublicKey {
    point: G2,
    prepared: Arc<G2Prepared>,
}

impl std::fmt::Debug for BlsPublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The preparation is a pure function of the point; dumping its
        // ~190-entry line table would drown logs and assertion output.
        f.debug_struct("BlsPublicKey")
            .field("point", &self.point)
            .finish_non_exhaustive()
    }
}

impl PartialEq for BlsPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The preparation is a pure function of the point.
        self.point == other.point
    }
}

impl Eq for BlsPublicKey {}

/// A BLS signature or aggregate thereof (a G1 point).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlsSignature(pub G1);

impl BlsPrivateKey {
    /// Generate a fresh key pair.
    pub fn generate(rng: &mut impl rand::Rng) -> Self {
        let sk = loop {
            let k = Fr::random(rng);
            if !k.is_zero() {
                break k;
            }
        };
        let pk = BlsPublicKey::new(G2::generator().mul_fr(&sk));
        BlsPrivateKey { sk, pk }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> &BlsPublicKey {
        &self.pk
    }

    /// Sign a message: `x·H(m)`.
    pub fn sign(&self, msg: &[u8]) -> BlsSignature {
        BlsSignature(G1::hash_to_curve(msg).mul_fr(&self.sk))
    }
}

impl BlsPublicKey {
    /// Wrap a public-key point, precomputing its pairing lines.
    pub fn new(point: G2) -> Self {
        let prepared = Arc::new(G2Prepared::new(&point));
        BlsPublicKey { point, prepared }
    }

    /// The underlying G2 point.
    pub fn point(&self) -> &G2 {
        &self.point
    }

    /// The cached Miller-loop preparation of this key.
    pub fn prepared(&self) -> &G2Prepared {
        &self.prepared
    }

    /// Verify an individual signature with a single multi-pairing:
    /// `e(σ, g2)·e(-H(m), X) == 1`.
    pub fn verify(&self, msg: &[u8], sig: &BlsSignature) -> bool {
        let sig_a = sig.0.to_affine();
        let neg_hash = G1::hash_to_curve(msg).neg().to_affine();
        let f = multi_miller_loop(&[(&sig_a, prepared_generator()), (&neg_hash, &self.prepared)]);
        final_exponentiation(&f).is_one()
    }

    /// Verify an aggregate signature over `msgs` (single-signer condensed
    /// verification: one hash-sum and one multi-pairing regardless of
    /// batch size).
    pub fn verify_aggregate(&self, msgs: &[&[u8]], agg: &BlsSignature) -> bool {
        let mut hash_sum = G1::infinity();
        for m in msgs {
            hash_sum = hash_sum.add(&G1::hash_to_curve(m));
        }
        if hash_sum.is_infinity() {
            // Empty batch: only the identity aggregate verifies.
            return agg.0.is_infinity();
        }
        let agg_a = agg.0.to_affine();
        let neg_sum = hash_sum.neg().to_affine();
        let f = multi_miller_loop(&[(&agg_a, prepared_generator()), (&neg_sum, &self.prepared)]);
        final_exponentiation(&f).is_one()
    }

    /// Verify many `(message set, aggregate)` claims in one shot via a
    /// random linear combination: with verifier-chosen coefficients `cᵢ`
    /// (the first pinned to 1) and per-claim hash sums `Hᵢ = Σ_m H(m)`,
    /// check `e(Σ cᵢσᵢ, g2) · e(−Σ cᵢHᵢ, X) == 1`. A batch of any size
    /// costs one two-term multi-Miller loop and one final exponentiation
    /// plus two short scalar multiplications per extra claim, instead of
    /// one full pairing check per claim.
    ///
    /// Soundness: the coefficients are 128-bit and drawn *after* the
    /// server commits to its answers, so a batch containing any invalid
    /// claim passes with probability ≤ 2⁻¹²⁸ — but a `false` result does
    /// not say *which* claim is bad; re-verify individually to localize.
    pub fn verify_aggregate_batch(
        &self,
        claims: &[(&[Vec<u8>], &BlsSignature)],
        rng: &mut impl rand::Rng,
    ) -> bool {
        let mut sig_acc = G1::infinity();
        let mut hash_acc = G1::infinity();
        for (i, (msgs, sig)) in claims.iter().enumerate() {
            let mut h = G1::infinity();
            for m in msgs.iter() {
                h = h.add(&G1::hash_to_curve(m));
            }
            if i == 0 {
                sig_acc = sig.0;
                hash_acc = h;
            } else {
                let c = [rng.gen::<u64>(), rng.gen::<u64>()];
                sig_acc = sig_acc.add(&sig.0.mul_scalar(&c));
                hash_acc = hash_acc.add(&h.mul_scalar(&c));
            }
        }
        if sig_acc.is_infinity() && hash_acc.is_infinity() {
            // All claims are empty-message/identity pairs (or the batch is
            // empty): nothing left to check.
            return true;
        }
        let sig_a = sig_acc.to_affine();
        let neg_hash = hash_acc.neg().to_affine();
        let f = multi_miller_loop(&[(&sig_a, prepared_generator()), (&neg_hash, &self.prepared)]);
        final_exponentiation(&f).is_one()
    }
}

impl BlsSignature {
    /// The aggregate identity element.
    pub fn identity() -> Self {
        BlsSignature(G1::infinity())
    }

    /// Combine with another signature (order-insensitive).
    pub fn aggregate(&self, other: &Self) -> Self {
        BlsSignature(self.0.add(&other.0))
    }

    /// Remove a previously aggregated component.
    pub fn subtract(&self, other: &Self) -> Self {
        BlsSignature(self.0.sub(&other.0))
    }
}

/// Aggregate a batch of signatures.
pub fn aggregate(sigs: &[BlsSignature]) -> BlsSignature {
    sigs.iter()
        .fold(BlsSignature::identity(), |acc, s| acc.aggregate(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> BlsPrivateKey {
        let mut rng = StdRng::seed_from_u64(101);
        BlsPrivateKey::generate(&mut rng)
    }

    #[test]
    fn sign_verify_round_trip() {
        let sk = key();
        let sig = sk.sign(b"quote: AAPL 182.52");
        assert!(sk.public_key().verify(b"quote: AAPL 182.52", &sig));
        assert!(!sk.public_key().verify(b"quote: AAPL 182.53", &sig));
    }

    #[test]
    fn wrong_key_rejects() {
        let sk1 = key();
        let mut rng = StdRng::seed_from_u64(202);
        let sk2 = BlsPrivateKey::generate(&mut rng);
        let sig = sk1.sign(b"msg");
        assert!(!sk2.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn verify_matches_two_pairing_definition() {
        // The multi-pairing check must agree with the textbook equation
        // e(σ, g2) == e(H(m), X).
        use crate::bn254::pairing;
        let sk = key();
        let sig = sk.sign(b"definitional check");
        let lhs = pairing(&sig.0, &G2::generator());
        let rhs = pairing(
            &G1::hash_to_curve(b"definitional check"),
            sk.public_key().point(),
        );
        assert_eq!(lhs, rhs);
        assert!(sk.public_key().verify(b"definitional check", &sig));
    }

    #[test]
    fn cloned_key_shares_preparation() {
        let sk = key();
        let pk = sk.public_key().clone();
        assert!(std::ptr::eq(
            pk.prepared() as *const _,
            sk.public_key().prepared() as *const _
        ));
    }

    #[test]
    fn aggregate_verifies() {
        let sk = key();
        let msgs: Vec<Vec<u8>> = (0..5u32)
            .map(|i| format!("tuple {i}").into_bytes())
            .collect();
        let sigs: Vec<BlsSignature> = msgs.iter().map(|m| sk.sign(m)).collect();
        let agg = aggregate(&sigs);
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        assert!(sk.public_key().verify_aggregate(&refs, &agg));
    }

    #[test]
    fn aggregate_rejects_tampering() {
        let sk = key();
        let msgs = [&b"a"[..], b"b", b"c"];
        let sigs: Vec<BlsSignature> = msgs.iter().map(|m| sk.sign(m)).collect();
        let agg = aggregate(&sigs);
        assert!(!sk
            .public_key()
            .verify_aggregate(&[&b"a"[..], b"b", b"x"], &agg));
        assert!(!sk.public_key().verify_aggregate(&[&b"a"[..], b"b"], &agg));
    }

    #[test]
    fn aggregate_order_insensitive() {
        let sk = key();
        let m1 = b"first".as_slice();
        let m2 = b"second".as_slice();
        let s1 = sk.sign(m1);
        let s2 = sk.sign(m2);
        assert_eq!(s1.aggregate(&s2), s2.aggregate(&s1));
        assert!(sk
            .public_key()
            .verify_aggregate(&[m2, m1], &s1.aggregate(&s2)));
    }

    #[test]
    fn subtract_inverts_aggregate() {
        let sk = key();
        let s1 = sk.sign(b"one");
        let s2 = sk.sign(b"two");
        let agg = s1.aggregate(&s2);
        assert_eq!(agg.subtract(&s2), s1);
        // Eager cache refresh pattern: swap an old component for a new one.
        let s2new = sk.sign(b"two v2");
        let refreshed = agg.subtract(&s2).aggregate(&s2new);
        assert!(sk
            .public_key()
            .verify_aggregate(&[&b"one"[..], b"two v2"], &refreshed));
    }

    #[test]
    fn batch_verifies_honest_claims() {
        let mut rng = StdRng::seed_from_u64(77);
        let sk = key();
        let mut claims_data: Vec<(Vec<Vec<u8>>, BlsSignature)> = Vec::new();
        for i in 0..6u32 {
            let msgs: Vec<Vec<u8>> = (0..=i).map(|j| format!("m{i}/{j}").into_bytes()).collect();
            let sigs: Vec<BlsSignature> = msgs.iter().map(|m| sk.sign(m)).collect();
            claims_data.push((msgs, aggregate(&sigs)));
        }
        let claims: Vec<(&[Vec<u8>], &BlsSignature)> =
            claims_data.iter().map(|(m, s)| (m.as_slice(), s)).collect();
        assert!(sk.public_key().verify_aggregate_batch(&claims, &mut rng));
        assert!(sk.public_key().verify_aggregate_batch(&[], &mut rng));
    }

    #[test]
    fn batch_rejects_single_bad_claim() {
        let mut rng = StdRng::seed_from_u64(78);
        let sk = key();
        let good_msgs: Vec<Vec<u8>> = vec![b"a".to_vec(), b"b".to_vec()];
        let good = aggregate(&[sk.sign(b"a"), sk.sign(b"b")]);
        let bad_msgs: Vec<Vec<u8>> = vec![b"c".to_vec(), b"TAMPERED".to_vec()];
        let bad = aggregate(&[sk.sign(b"c"), sk.sign(b"d")]);
        let claims: Vec<(&[Vec<u8>], &BlsSignature)> =
            vec![(good_msgs.as_slice(), &good), (bad_msgs.as_slice(), &bad)];
        assert!(!sk.public_key().verify_aggregate_batch(&claims, &mut rng));
        // Swapping two claims' aggregates must not cancel out either.
        let swapped: Vec<(&[Vec<u8>], &BlsSignature)> =
            vec![(good_msgs.as_slice(), &bad), (bad_msgs.as_slice(), &good)];
        assert!(!sk.public_key().verify_aggregate_batch(&swapped, &mut rng));
    }

    #[test]
    fn batch_rejects_nonidentity_on_empty_messages() {
        let mut rng = StdRng::seed_from_u64(79);
        let sk = key();
        let empty: Vec<Vec<u8>> = Vec::new();
        let forged = sk.sign(b"x");
        let claims: Vec<(&[Vec<u8>], &BlsSignature)> = vec![(empty.as_slice(), &forged)];
        assert!(!sk.public_key().verify_aggregate_batch(&claims, &mut rng));
        let ident = BlsSignature::identity();
        let claims: Vec<(&[Vec<u8>], &BlsSignature)> = vec![(empty.as_slice(), &ident)];
        assert!(sk.public_key().verify_aggregate_batch(&claims, &mut rng));
    }

    #[test]
    fn empty_aggregate_is_identity_only() {
        let sk = key();
        assert!(sk
            .public_key()
            .verify_aggregate(&[], &BlsSignature::identity()));
        let nonidentity = sk.sign(b"x");
        assert!(!sk.public_key().verify_aggregate(&[], &nonidentity));
    }
}
