//! Quadratic extension `Fp2 = Fp[u]/(u² + 1)`.

use super::fp::Fp;

/// An element `c0 + c1·u` of Fp2.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Fp2 {
    pub c0: Fp,
    pub c1: Fp,
}

impl Fp2 {
    /// The additive identity.
    pub fn zero() -> Self {
        Fp2 {
            c0: Fp::zero(),
            c1: Fp::zero(),
        }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Fp2 {
            c0: Fp::one(),
            c1: Fp::zero(),
        }
    }

    /// Construct from components.
    pub fn new(c0: Fp, c1: Fp) -> Self {
        Fp2 { c0, c1 }
    }

    /// Embed a base-field element.
    pub fn from_fp(c0: Fp) -> Self {
        Fp2 { c0, c1: Fp::zero() }
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Uniform random element.
    pub fn random(rng: &mut impl rand::Rng) -> Self {
        Fp2 {
            c0: Fp::random(rng),
            c1: Fp::random(rng),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        Fp2 {
            c0: self.c0.add(&other.c0),
            c1: self.c1.add(&other.c1),
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        Fp2 {
            c0: self.c0.sub(&other.c0),
            c1: self.c1.sub(&other.c1),
        }
    }

    /// `-self`.
    pub fn neg(&self) -> Self {
        Fp2 {
            c0: self.c0.neg(),
            c1: self.c1.neg(),
        }
    }

    /// `2·self`.
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// `self * other` (Karatsuba, 3 base-field multiplications).
    pub fn mul(&self, other: &Self) -> Self {
        let aa = self.c0.mul(&other.c0);
        let bb = self.c1.mul(&other.c1);
        let sum_a = self.c0.add(&self.c1);
        let sum_b = other.c0.add(&other.c1);
        Fp2 {
            c0: aa.sub(&bb),
            c1: sum_a.mul(&sum_b).sub(&aa).sub(&bb),
        }
    }

    /// `self²` ((a+b)(a-b), 2ab).
    pub fn square(&self) -> Self {
        let p = self.c0.add(&self.c1);
        let m = self.c0.sub(&self.c1);
        let ab = self.c0.mul(&self.c1);
        Fp2 {
            c0: p.mul(&m),
            c1: ab.double(),
        }
    }

    /// Scale by a base-field element.
    pub fn mul_fp(&self, k: &Fp) -> Self {
        Fp2 {
            c0: self.c0.mul(k),
            c1: self.c1.mul(k),
        }
    }

    /// Multiply by the sextic non-residue ξ = 9 + u:
    /// `(9a0 - a1) + (a0 + 9a1)u`.
    pub fn mul_by_nonresidue(&self) -> Self {
        let nine_a0 = mul_by_9(&self.c0);
        let nine_a1 = mul_by_9(&self.c1);
        Fp2 {
            c0: nine_a0.sub(&self.c1),
            c1: self.c0.add(&nine_a1),
        }
    }

    /// Conjugate `c0 - c1·u` (= Frobenius `x ↦ x^p` on Fp2).
    pub fn conjugate(&self) -> Self {
        Fp2 {
            c0: self.c0,
            c1: self.c1.neg(),
        }
    }

    /// Multiplicative inverse: `(c0 - c1·u) / (c0² + c1²)`.
    pub fn invert(&self) -> Option<Self> {
        let norm = self.c0.square().add(&self.c1.square());
        let inv = norm.invert()?;
        Some(Fp2 {
            c0: self.c0.mul(&inv),
            c1: self.c1.neg().mul(&inv),
        })
    }

    /// Square root via the "complex method" (valid since u² = -1 and
    /// p ≡ 3 mod 4). Returns `None` for quadratic non-residues.
    pub fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        if self.c1.is_zero() {
            // sqrt of a base-field element: either sqrt(c0) in Fp, or
            // sqrt(-c0)·u if c0 is a non-residue.
            if let Some(r) = self.c0.sqrt() {
                return Some(Fp2::from_fp(r));
            }
            let r = self.c0.neg().sqrt()?;
            return Some(Fp2::new(Fp::zero(), r));
        }
        let norm = self.c0.square().add(&self.c1.square());
        let n = norm.sqrt()?;
        let two_inv = Fp::from_u64(2).invert().expect("2 != 0 in Fp");
        for cand in [self.c0.add(&n), self.c0.sub(&n)] {
            let half = cand.mul(&two_inv);
            if let Some(a) = half.sqrt() {
                if a.is_zero() {
                    continue;
                }
                let b = self.c1.mul(&two_inv).mul(&a.invert().expect("a nonzero"));
                let root = Fp2::new(a, b);
                if root.square() == *self {
                    return Some(root);
                }
            }
        }
        None
    }

    /// `self^exp` for a little-endian limb exponent.
    pub fn pow(&self, exp: &[u64]) -> Self {
        let mut result = Self::one();
        let mut found_one = false;
        for i in (0..exp.len() * 64).rev() {
            if found_one {
                result = result.square();
            }
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                found_one = true;
                result = result.mul(self);
            }
        }
        result
    }
}

fn mul_by_9(a: &Fp) -> Fp {
    let two = a.double();
    let four = two.double();
    let eight = four.double();
    eight.add(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn u_squared_is_minus_one() {
        let u = Fp2::new(Fp::zero(), Fp::one());
        assert_eq!(u.square(), Fp2::from_fp(Fp::one().neg()));
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..30 {
            let a = Fp2::random(&mut r);
            let b = Fp2::random(&mut r);
            let c = Fp2::random(&mut r);
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            assert_eq!(a.square(), a.mul(&a));
            assert_eq!(a.sub(&a), Fp2::zero());
        }
    }

    #[test]
    fn inversion_round_trip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp2::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fp2::one());
        }
        assert!(Fp2::zero().invert().is_none());
    }

    #[test]
    fn nonresidue_matches_explicit_mul() {
        let mut r = rng();
        let xi = Fp2::new(Fp::from_u64(9), Fp::one());
        for _ in 0..20 {
            let a = Fp2::random(&mut r);
            assert_eq!(a.mul_by_nonresidue(), a.mul(&xi));
        }
    }

    #[test]
    fn sqrt_of_squares() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp2::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == a.neg(), "wrong root");
        }
    }

    #[test]
    fn conjugate_is_multiplicative() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp2::random(&mut r);
            let b = Fp2::random(&mut r);
            assert_eq!(a.mul(&b).conjugate(), a.conjugate().mul(&b.conjugate()));
        }
    }
}
