//! The group G2 ⊂ E'(Fp2) on the sextic D-twist E': y² = x³ + 3/(9+u).
//!
//! `#E'(Fp2) = r·c2` with cofactor `c2 = 2p - r`; points are brought into
//! the order-r subgroup by multiplying by `c2` (cofactor clearing).

use std::sync::OnceLock;

use super::curve::{Affine, CurveSpec, Point};
use super::fp::{FieldParams, Fp, FpParams, FrParams};
use super::fp2::Fp2;
use crate::bigint::BigUint;
use crate::sha256::Sha256;

/// Curve spec for the twist.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct G2Spec;

impl CurveSpec for G2Spec {
    type F = Fp2;
    fn b() -> Fp2 {
        static B: OnceLock<Fp2> = OnceLock::new();
        *B.get_or_init(|| {
            // b' = 3 / (9 + u)
            let xi = Fp2::new(Fp::from_u64(9), Fp::one());
            Fp2::from_fp(Fp::from_u64(3)).mul(&xi.invert().expect("xi nonzero"))
        })
    }
    const NAME: &'static str = "G2";
}

/// A G2 element (Jacobian, coordinates in Fp2).
pub type G2 = Point<G2Spec>;
/// A G2 element in affine form.
pub type G2Affine = Affine<G2Spec>;

/// Compressed G2 encoding length: tag byte + 64-byte x-coordinate.
pub const G2_COMPRESSED_LEN: usize = 65;

/// Little-endian limbs of the G2 cofactor `c2 = 2p - r`.
fn cofactor_limbs() -> &'static Vec<u64> {
    static C: OnceLock<Vec<u64>> = OnceLock::new();
    C.get_or_init(|| {
        let p = BigUint::from_limbs(FpParams::MODULUS.to_vec());
        let r = BigUint::from_limbs(FrParams::MODULUS.to_vec());
        p.shl(1).sub(&r).limbs().to_vec()
    })
}

impl G2 {
    /// The standard alt_bn128 G2 generator (as pinned by EIP-197).
    pub fn generator() -> Self {
        static GEN: OnceLock<(Fp2, Fp2)> = OnceLock::new();
        let (x, y) = GEN.get_or_init(|| {
            let fp = |s: &str| Fp::from_biguint(&BigUint::from_dec(s).expect("decimal"));
            let x = Fp2::new(
                fp("10857046999023057135944570762232829481370756359578518086990519993285655852781"),
                fp("11559732032986387107991004021392285783925812861821192530917403151452391805634"),
            );
            let y = Fp2::new(
                fp("8495653923123431417604973247489272438418190587263600148770280649306958101930"),
                fp("4082367875863433681332203403145435568316851327593401208105741076214120093531"),
            );
            (x, y)
        });
        G2::from_affine_coords(*x, *y)
    }

    /// Multiply by a scalar given as an Fr element.
    pub fn mul_fr(&self, k: &super::fp::Fr) -> Self {
        self.mul_scalar(&k.to_canonical())
    }

    /// Hash a message onto the order-r subgroup (try-and-increment on the
    /// twist followed by cofactor clearing). Used as a self-contained way to
    /// derive independent G2 points.
    pub fn hash_to_curve(msg: &[u8]) -> Self {
        let mut counter: u32 = 0;
        loop {
            let mut h0 = Sha256::new();
            h0.update(b"authdb-bn254-g2:c0:");
            h0.update(msg);
            h0.update(&counter.to_be_bytes());
            let d0 = h0.finalize();
            let mut h1 = Sha256::new();
            h1.update(b"authdb-bn254-g2:c1:");
            h1.update(msg);
            h1.update(&counter.to_be_bytes());
            let d1 = h1.finalize();
            let x = Fp2::new(Fp::from_bytes_be_reduce(&d0), Fp::from_bytes_be_reduce(&d1));
            let y2 = x.square().mul(&x).add(&G2Spec::b());
            if let Some(y) = y2.sqrt() {
                let y = if (d0[0] & 1 == 1) != y.c0.is_odd() {
                    y.neg()
                } else {
                    y
                };
                let p = G2::from_affine_coords(x, y).mul_scalar(cofactor_limbs());
                if !p.is_infinity() {
                    return p;
                }
            }
            counter += 1;
        }
    }

    /// Compressed serialization (tag + big-endian x.c1 ‖ x.c0).
    pub fn to_compressed(&self) -> [u8; G2_COMPRESSED_LEN] {
        let mut out = [0u8; G2_COMPRESSED_LEN];
        match self.to_affine() {
            Affine::Infinity => out[0] = 0x00,
            Affine::Coords(x, y) => {
                out[0] = if y.c0.is_odd() { 0x03 } else { 0x02 };
                out[1..33].copy_from_slice(&x.c1.to_bytes_be());
                out[33..65].copy_from_slice(&x.c0.to_bytes_be());
            }
        }
        out
    }

    /// Decompress; returns `None` for invalid encodings.
    pub fn from_compressed(bytes: &[u8; G2_COMPRESSED_LEN]) -> Option<Self> {
        match bytes[0] {
            0x00 => Some(G2::infinity()),
            tag @ (0x02 | 0x03) => {
                let x = Fp2::new(
                    Fp::from_bytes_be_reduce(&bytes[33..65]),
                    Fp::from_bytes_be_reduce(&bytes[1..33]),
                );
                let y2 = x.square().mul(&x).add(&G2Spec::b());
                let y = y2.sqrt()?;
                let y = if (tag == 0x03) != y.c0.is_odd() {
                    y.neg()
                } else {
                    y
                };
                let p = G2::from_affine_coords(x, y);
                if p.to_affine().is_on_curve() {
                    Some(p)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Strictly canonical decompression for wire use: accepts exactly the
    /// byte strings [`G2::to_compressed`] produces (see
    /// [`super::g1::G1::from_compressed_canonical`] for why re-encoding
    /// must be bit-identical).
    pub fn from_compressed_canonical(bytes: &[u8; G2_COMPRESSED_LEN]) -> Option<Self> {
        let p = Self::from_compressed(bytes)?;
        if &p.to_compressed() == bytes {
            Some(p)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn generator_on_curve_and_order_r() {
        let g = G2::generator();
        assert!(g.to_affine().is_on_curve(), "standard G2 generator invalid");
        assert!(
            g.mul_scalar(&FrParams::MODULUS).is_infinity(),
            "generator order is not r"
        );
        assert!(!g.mul_scalar(&[7]).is_infinity());
    }

    #[test]
    fn cofactor_is_2p_minus_r() {
        let p = BigUint::from_limbs(FpParams::MODULUS.to_vec());
        let r = BigUint::from_limbs(FrParams::MODULUS.to_vec());
        assert_eq!(
            BigUint::from_limbs(cofactor_limbs().clone()),
            p.shl(1).sub(&r)
        );
    }

    #[test]
    fn hash_to_curve_lands_in_subgroup() {
        let p = G2::hash_to_curve(b"test point");
        assert!(p.to_affine().is_on_curve());
        assert!(p.mul_scalar(&FrParams::MODULUS).is_infinity());
    }

    #[test]
    fn group_axioms() {
        let mut r = StdRng::seed_from_u64(29);
        let g = G2::generator();
        let a = g.mul_scalar(&[r.gen::<u64>()]);
        let b = g.mul_scalar(&[r.gen::<u64>()]);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&a.neg()), G2::infinity());
        assert_eq!(a.double(), a.add(&a));
    }

    #[test]
    fn compression_round_trip() {
        let mut r = StdRng::seed_from_u64(31);
        let p = G2::generator().mul_scalar(&[r.gen::<u64>()]);
        let bytes = p.to_compressed();
        assert_eq!(G2::from_compressed(&bytes).unwrap(), p);
    }
}
