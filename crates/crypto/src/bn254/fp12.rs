//! Quadratic extension `Fp12 = Fp6[w]/(w² - v)`: the pairing target field GT.
//!
//! Besides generic field arithmetic this provides the pairing engine's
//! special-purpose operations: sparse multiplication by Miller-loop line
//! functions ([`Fp12::mul_by_line`] for Tate-shaped lines evaluated at
//! ψ(Q), [`Fp12::mul_by_034`] for ate-shaped lines evaluated at P) and
//! Granger–Scott cyclotomic squaring ([`Fp12::cyclotomic_square`]), which
//! is valid — and ~3× cheaper than [`Fp12::square`] — once an element has
//! been pushed into the cyclotomic subgroup by the easy part of the final
//! exponentiation.

use super::fp::Fp;
use super::fp2::Fp2;
use super::fp6::Fp6;

/// An element `c0 + c1·w` of Fp12.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Fp12 {
    pub c0: Fp6,
    pub c1: Fp6,
}

impl Fp12 {
    /// The additive identity.
    pub fn zero() -> Self {
        Fp12 {
            c0: Fp6::zero(),
            c1: Fp6::zero(),
        }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Fp12 {
            c0: Fp6::one(),
            c1: Fp6::zero(),
        }
    }

    /// Construct from components.
    pub fn new(c0: Fp6, c1: Fp6) -> Self {
        Fp12 { c0, c1 }
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// True iff one.
    pub fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// Uniform random element.
    pub fn random(rng: &mut impl rand::Rng) -> Self {
        Fp12 {
            c0: Fp6::random(rng),
            c1: Fp6::random(rng),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        Fp12 {
            c0: self.c0.add(&other.c0),
            c1: self.c1.add(&other.c1),
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        Fp12 {
            c0: self.c0.sub(&other.c0),
            c1: self.c1.sub(&other.c1),
        }
    }

    /// `self * other` (Karatsuba over Fp6, reduction w² = v).
    pub fn mul(&self, other: &Self) -> Self {
        let aa = self.c0.mul(&other.c0);
        let bb = self.c1.mul(&other.c1);
        let sum_a = self.c0.add(&self.c1);
        let sum_b = other.c0.add(&other.c1);
        Fp12 {
            c0: aa.add(&bb.mul_by_v()),
            c1: sum_a.mul(&sum_b).sub(&aa).sub(&bb),
        }
    }

    /// `self²`.
    pub fn square(&self) -> Self {
        // (c0 + c1 w)^2 = (c0^2 + v c1^2) + 2 c0 c1 w
        let ab = self.c0.mul(&self.c1);
        let a2 = self.c0.square();
        let b2 = self.c1.square();
        Fp12 {
            c0: a2.add(&b2.mul_by_v()),
            c1: ab.add(&ab),
        }
    }

    /// Conjugation `c0 - c1·w`; equals the Frobenius power `x ↦ x^(p^6)`
    /// (verified by a unit test), so for unitary elements it is the inverse.
    pub fn conjugate(&self) -> Self {
        Fp12 {
            c0: self.c0,
            c1: self.c1.neg(),
        }
    }

    /// Multiplicative inverse: `(c0 - c1 w) / (c0² - v·c1²)`.
    pub fn invert(&self) -> Option<Self> {
        let norm = self.c0.square().sub(&self.c1.square().mul_by_v());
        let inv = norm.invert()?;
        Some(Fp12 {
            c0: self.c0.mul(&inv),
            c1: self.c1.neg().mul(&inv),
        })
    }

    /// `self^exp` for a little-endian limb exponent.
    pub fn pow(&self, exp: &[u64]) -> Self {
        let mut result = Self::one();
        let mut found_one = false;
        for i in (0..exp.len() * 64).rev() {
            if found_one {
                result = result.square();
            }
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                found_one = true;
                result = result.mul(self);
            }
        }
        result
    }

    /// Sparse multiplication by a Tate line function of the shape
    /// `a (in Fp2, slot c0.c0) + b·v (slot c0.c1) + c·v·w (slot c1.c1)`.
    ///
    /// This is the only shape the Miller loop produces, and exploiting it
    /// roughly halves the loop's Fp12 multiplication cost.
    pub fn mul_by_line(&self, a: &Fp2, b: &Fp2, c: &Fp2) -> Self {
        let line = Fp12 {
            c0: Fp6::new(*a, *b, Fp2::zero()),
            c1: Fp6::new(Fp2::zero(), *c, Fp2::zero()),
        };
        self.mul(&line)
    }

    /// Sparse multiplication by an ate line function of the shape
    /// `a (in Fp, slot c0.c0) + b·w (slot c1.c0) + c·v·w (slot c1.c1)`
    /// — what a twist line through multiples of Q evaluates to at a G1
    /// point P. Exploiting the shape costs 2 sparse Fp6 products plus two
    /// Fp scalings instead of a full Fp12 multiplication.
    pub fn mul_by_034(&self, a: &Fp, b: &Fp2, c: &Fp2) -> Self {
        // (f0 + f1·w)(a + (b + c·v)·w), using w² = v:
        //   c0 = f0·a + f1·(b + c·v)·v
        //   c1 = f0·(b + c·v) + f1·a
        let f0a = self.c0.mul_fp(a);
        let f1l = self.c1.mul_by_01(b, c);
        let f0l = self.c0.mul_by_01(b, c);
        let f1a = self.c1.mul_fp(a);
        Fp12 {
            c0: f0a.add(&f1l.mul_by_v()),
            c1: f0l.add(&f1a),
        }
    }

    /// Squaring in the cyclotomic subgroup `G_{Φ6}(p²)` (Granger–Scott).
    ///
    /// Only valid for elements `z` with `z^(p⁴-p²+1) = 1`, i.e. after the
    /// easy part `(p⁶-1)(p²+1)` of the final exponentiation; a unit test
    /// checks agreement with [`Fp12::square`] on such elements.
    pub fn cyclotomic_square(&self) -> Self {
        // Coefficients over the basis 1, v, v², w, vw, v²w, in the
        // SQR_CYC2345 arrangement of Granger–Scott 2010 (three Fp4
        // squarings).
        let z0 = self.c0.c0;
        let z4 = self.c0.c1;
        let z3 = self.c0.c2;
        let z2 = self.c1.c0;
        let z1 = self.c1.c1;
        let z5 = self.c1.c2;

        let (t0, t1) = fp4_square(&z0, &z1);
        let z0 = t0.sub(&z0).double().add(&t0);
        let z1 = t1.add(&z1).double().add(&t1);

        let (t0, t1) = fp4_square(&z2, &z3);
        let (t2, t3) = fp4_square(&z4, &z5);

        let z4 = t0.sub(&z4).double().add(&t0);
        let z5 = t1.add(&z5).double().add(&t1);

        let t0 = t3.mul_by_nonresidue();
        let z2 = t0.add(&z2).double().add(&t0);
        let z3 = t2.sub(&z3).double().add(&t2);

        Fp12 {
            c0: Fp6::new(z0, z4, z3),
            c1: Fp6::new(z2, z1, z5),
        }
    }
}

/// Squaring in Fp4 = Fp2[w']/(w'² - v_like_nonresidue): returns
/// `(a² + ξ·b², 2ab)` for the element `a + b·w'`.
fn fp4_square(a: &Fp2, b: &Fp2) -> (Fp2, Fp2) {
    let a2 = a.square();
    let b2 = b.square();
    let c0 = b2.mul_by_nonresidue().add(&a2);
    let c1 = a.add(b).square().sub(&a2).sub(&b2);
    (c0, c1)
}

#[cfg(test)]
mod tests {
    use super::super::fp::FieldParams;
    use super::super::fp::FpParams;
    use super::*;
    use crate::bigint::BigUint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn w_squared_is_v() {
        let w = Fp12::new(Fp6::zero(), Fp6::one());
        let v = Fp12::new(Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero()), Fp6::zero());
        assert_eq!(w.square(), v);
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp12::random(&mut r);
            let b = Fp12::random(&mut r);
            let c = Fp12::random(&mut r);
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            assert_eq!(a.square(), a.mul(&a));
        }
    }

    #[test]
    fn inversion_round_trip() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fp12::one());
        }
    }

    #[test]
    fn conjugate_equals_frobenius_p6() {
        // x^(p^6) must equal conjugation; this justifies the cheap easy part
        // of the final exponentiation.
        let p = BigUint::from_limbs(FpParams::MODULUS.to_vec());
        let p6 = p.mul(&p).mul(&p).mul(&p).mul(&p).mul(&p);
        let mut r = rng();
        let a = Fp12::random(&mut r);
        assert_eq!(a.pow(p6.limbs()), a.conjugate());
    }

    #[test]
    fn pow_small() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        assert_eq!(a.pow(&[0]), Fp12::one());
        assert_eq!(a.pow(&[1]), a);
        assert_eq!(a.pow(&[2]), a.square());
        assert_eq!(a.pow(&[3]), a.square().mul(&a));
    }

    #[test]
    fn mul_by_line_matches_full_mul() {
        let mut r = rng();
        let f = Fp12::random(&mut r);
        let a = Fp2::random(&mut r);
        let b = Fp2::random(&mut r);
        let c = Fp2::random(&mut r);
        let sparse = Fp12::new(
            Fp6::new(a, b, Fp2::zero()),
            Fp6::new(Fp2::zero(), c, Fp2::zero()),
        );
        assert_eq!(f.mul_by_line(&a, &b, &c), f.mul(&sparse));
    }
}
