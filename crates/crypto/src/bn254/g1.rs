//! The group G1 = E(Fp) with E: y² = x³ + 3. For BN curves `#E(Fp) = r`
//! exactly (cofactor 1), so every finite point already has order r.

use super::curve::{Affine, CurveSpec, Point};
use super::fp::{FieldParams, Fp, FrParams};
use crate::sha256::Sha256;

/// Curve spec for G1.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct G1Spec;

impl CurveSpec for G1Spec {
    type F = Fp;
    fn b() -> Fp {
        Fp::from_u64(3)
    }
    const NAME: &'static str = "G1";
}

/// A G1 element (Jacobian).
pub type G1 = Point<G1Spec>;
/// A G1 element in affine form.
pub type G1Affine = Affine<G1Spec>;

/// Compressed G1 encoding length: tag byte + 32-byte x-coordinate.
pub const G1_COMPRESSED_LEN: usize = 33;

impl G1 {
    /// The standard generator (1, 2).
    pub fn generator() -> Self {
        G1::from_affine_coords(Fp::from_u64(1), Fp::from_u64(2))
    }

    /// Multiply by a scalar given as an Fr element's canonical limbs.
    pub fn mul_fr(&self, k: &super::fp::Fr) -> Self {
        self.mul_scalar(&k.to_canonical())
    }

    /// Hash a message to a G1 point (try-and-increment). Deterministic, and
    /// the output is uniform-ish over the curve; cofactor is 1 so no
    /// clearing step is needed.
    pub fn hash_to_curve(msg: &[u8]) -> Self {
        let mut counter: u32 = 0;
        loop {
            let mut h = Sha256::new();
            h.update(b"authdb-bn254-g1:");
            h.update(msg);
            h.update(&counter.to_be_bytes());
            let digest = h.finalize();
            let x = Fp::from_bytes_be_reduce(&digest);
            let y2 = x.square().mul(&x).add(&Fp::from_u64(3));
            if let Some(y) = y2.sqrt() {
                // Use one digest bit to pick the root's sign deterministically.
                let y = if (digest[0] & 1 == 1) != y.is_odd() {
                    y.neg()
                } else {
                    y
                };
                return G1::from_affine_coords(x, y);
            }
            counter += 1;
        }
    }

    /// Compressed serialization (tag byte + big-endian x).
    pub fn to_compressed(&self) -> [u8; G1_COMPRESSED_LEN] {
        let mut out = [0u8; G1_COMPRESSED_LEN];
        match self.to_affine() {
            Affine::Infinity => out[0] = 0x00,
            Affine::Coords(x, y) => {
                out[0] = if y.is_odd() { 0x03 } else { 0x02 };
                out[1..].copy_from_slice(&x.to_bytes_be());
            }
        }
        out
    }

    /// Decompress; returns `None` for encodings not on the curve.
    pub fn from_compressed(bytes: &[u8; G1_COMPRESSED_LEN]) -> Option<Self> {
        match bytes[0] {
            0x00 => Some(G1::infinity()),
            tag @ (0x02 | 0x03) => {
                let x = Fp::from_bytes_be_reduce(&bytes[1..]);
                let y2 = x.square().mul(&x).add(&Fp::from_u64(3));
                let y = y2.sqrt()?;
                let y = if (tag == 0x03) != y.is_odd() {
                    y.neg()
                } else {
                    y
                };
                let p = G1::from_affine_coords(x, y);
                if p.to_affine().is_on_curve() {
                    Some(p)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Strictly canonical decompression for wire use: accepts exactly the
    /// byte strings [`G1::to_compressed`] produces. On top of the curve
    /// membership check this rejects an x-coordinate at or above the field
    /// modulus (which `from_bytes_be_reduce` would silently reduce) and an
    /// infinity tag with a nonzero tail — either would give two encodings
    /// of one point and break the bit-identical re-encoding guarantee
    /// signatures downstream depend on.
    pub fn from_compressed_canonical(bytes: &[u8; G1_COMPRESSED_LEN]) -> Option<Self> {
        let p = Self::from_compressed(bytes)?;
        if &p.to_compressed() == bytes {
            Some(p)
        } else {
            None
        }
    }
}

/// The group order r as little-endian limbs (the Fr modulus).
pub fn group_order_limbs() -> [u64; 4] {
    FrParams::MODULUS
}

#[cfg(test)]
mod tests {
    use super::super::fp::Fr;
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    #[test]
    fn generator_on_curve() {
        assert!(G1::generator().to_affine().is_on_curve());
    }

    #[test]
    fn generator_has_order_r() {
        let g = G1::generator();
        assert!(g.mul_scalar(&group_order_limbs()).is_infinity());
        assert!(!g.mul_scalar(&[2]).is_infinity());
    }

    #[test]
    fn group_axioms() {
        let mut r = rng();
        let g = G1::generator();
        let a = g.mul_scalar(&[r.gen::<u64>()]);
        let b = g.mul_scalar(&[r.gen::<u64>()]);
        let c = g.mul_scalar(&[r.gen::<u64>()]);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        assert_eq!(a.add(&a.neg()), G1::infinity());
        assert_eq!(a.add(&G1::infinity()), a);
        assert_eq!(a.double(), a.add(&a));
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = G1::generator();
        // (k1 + k2) g == k1 g + k2 g for small scalars
        let k1 = 123456789u64;
        let k2 = 987654321u64;
        assert_eq!(
            g.mul_scalar(&[k1 + k2]),
            g.mul_scalar(&[k1]).add(&g.mul_scalar(&[k2]))
        );
    }

    #[test]
    fn mul_fr_wraps_group_order() {
        let g = G1::generator();
        let one = Fr::from_u64(1);
        assert_eq!(g.mul_fr(&one), g);
        // r ≡ 0, so r+1 ≡ 1. Build r+1 through the reducing constructor —
        // r itself is not a canonical Fr value.
        let r = crate::bigint::BigUint::from_limbs(group_order_limbs().to_vec());
        let r_plus_1 = Fr::from_biguint(&r).add(&one);
        assert_eq!(g.mul_fr(&r_plus_1), g);
    }

    #[test]
    fn hash_to_curve_on_curve_and_distinct() {
        let p1 = G1::hash_to_curve(b"message one");
        let p2 = G1::hash_to_curve(b"message two");
        assert!(p1.to_affine().is_on_curve());
        assert!(p2.to_affine().is_on_curve());
        assert_ne!(p1, p2);
        // Deterministic
        assert_eq!(p1, G1::hash_to_curve(b"message one"));
    }

    #[test]
    fn compression_round_trip() {
        let mut r = rng();
        for _ in 0..10 {
            let p = G1::generator().mul_scalar(&[r.gen::<u64>(), r.gen::<u64>()]);
            let bytes = p.to_compressed();
            assert_eq!(G1::from_compressed(&bytes).unwrap(), p);
        }
        let inf = G1::infinity().to_compressed();
        assert!(G1::from_compressed(&inf).unwrap().is_infinity());
    }

    #[test]
    fn jacobian_affine_round_trip() {
        let g = G1::generator().mul_scalar(&[42]);
        let a = g.to_affine();
        assert_eq!(G1::from_affine(&a), g);
    }
}
