//! 256-bit prime fields with 4×64-limb Montgomery arithmetic.
//!
//! Two instantiations: [`Fp`] (the BN254 base field) and [`Fr`] (the scalar
//! field / group order). Both primes come from the BN parametrization
//! x = 4965661367192848881:
//! `p = 36x^4 + 36x^3 + 24x^2 + 6x + 1`, `r = 36x^4 + 36x^3 + 18x^2 + 6x + 1`.
//! A unit test re-derives every constant from scratch with [`crate::bigint`].
#![allow(clippy::needless_range_loop)] // fixed 4-limb loops read better indexed

use crate::bigint::BigUint;
use std::fmt;
use std::marker::PhantomData;

/// Compile-time parameters of a 4-limb prime field.
pub trait FieldParams: 'static + Copy + Clone + Send + Sync + PartialEq + Eq {
    /// The prime modulus, little-endian limbs.
    const MODULUS: [u64; 4];
    /// `-MODULUS^{-1} mod 2^64`.
    const INV: u64;
    /// `2^256 mod MODULUS` (Montgomery form of 1).
    const R: [u64; 4];
    /// `2^512 mod MODULUS`.
    const R2: [u64; 4];
    /// Short human-readable name for diagnostics.
    const NAME: &'static str;
}

/// BN254 base-field parameters (the prime `p`).
#[derive(Copy, Clone, PartialEq, Eq)]
pub struct FpParams;

impl FieldParams for FpParams {
    const MODULUS: [u64; 4] = [
        0x3c208c16d87cfd47,
        0x97816a916871ca8d,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ];
    const INV: u64 = 0x87d20782e4866389;
    const R: [u64; 4] = [
        0xd35d438dc58f0d9d,
        0x0a78eb28f5c70b3d,
        0x666ea36f7879462c,
        0x0e0a77c19a07df2f,
    ];
    const R2: [u64; 4] = [
        0xf32cfc5b538afa89,
        0xb5e71911d44501fb,
        0x47ab1eff0a417ff6,
        0x06d89f71cab8351f,
    ];
    const NAME: &'static str = "Fp";
}

/// BN254 scalar-field parameters (the prime `r`, the order of G1/G2/GT).
#[derive(Copy, Clone, PartialEq, Eq)]
pub struct FrParams;

impl FieldParams for FrParams {
    const MODULUS: [u64; 4] = [
        0x43e1f593f0000001,
        0x2833e84879b97091,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ];
    const INV: u64 = 0xc2e1f593efffffff;
    const R: [u64; 4] = [
        0xac96341c4ffffffb,
        0x36fc76959f60cd29,
        0x666ea36f7879462e,
        0x0e0a77c19a07df2f,
    ];
    const R2: [u64; 4] = [
        0x1bb8e645ae216da7,
        0x53fe3ab1e35c59e3,
        0x8c49833d53bb8085,
        0x0216d0b17f4e44a5,
    ];
    const NAME: &'static str = "Fr";
}

/// An element of a 4-limb prime field, stored in Montgomery form.
pub struct Field<P: FieldParams>(pub(crate) [u64; 4], PhantomData<P>);

/// The BN254 base field.
pub type Fp = Field<FpParams>;
/// The BN254 scalar field.
pub type Fr = Field<FrParams>;

impl<P: FieldParams> Copy for Field<P> {}
impl<P: FieldParams> Clone for Field<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: FieldParams> PartialEq for Field<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<P: FieldParams> Eq for Field<P> {}

impl<P: FieldParams> fmt::Debug for Field<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(0x{})", P::NAME, self.to_biguint().to_hex())
    }
}

#[inline(always)]
fn adc(a: u64, b: u64, carry: &mut u64) -> u64 {
    let t = a as u128 + b as u128 + *carry as u128;
    *carry = (t >> 64) as u64;
    t as u64
}

#[inline(always)]
fn sbb(a: u64, b: u64, borrow: &mut u64) -> u64 {
    let t = (a as u128).wrapping_sub(b as u128 + (*borrow >> 63) as u128);
    *borrow = (t >> 64) as u64;
    t as u64
}

#[inline(always)]
fn mac(a: u64, b: u64, c: u64, carry: &mut u64) -> u64 {
    let t = a as u128 + b as u128 * c as u128 + *carry as u128;
    *carry = (t >> 64) as u64;
    t as u64
}

impl<P: FieldParams> Field<P> {
    /// The additive identity.
    #[inline]
    pub fn zero() -> Self {
        Field([0; 4], PhantomData)
    }

    /// The multiplicative identity.
    #[inline]
    pub fn one() -> Self {
        Field(P::R, PhantomData)
    }

    /// True iff this is the additive identity.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Construct from a small integer.
    pub fn from_u64(v: u64) -> Self {
        Field([v, 0, 0, 0], PhantomData).mul(&Field(P::R2, PhantomData))
    }

    /// Construct from canonical little-endian limbs (must be < modulus).
    pub fn from_canonical(limbs: [u64; 4]) -> Self {
        debug_assert!(lt(&limbs, &P::MODULUS), "value not reduced");
        Field(limbs, PhantomData).mul(&Field(P::R2, PhantomData))
    }

    /// Construct from a [`BigUint`], reducing modulo the field prime.
    pub fn from_biguint(v: &BigUint) -> Self {
        let modulus = BigUint::from_limbs(P::MODULUS.to_vec());
        let reduced = v.rem(&modulus);
        let mut limbs = [0u64; 4];
        for (i, &l) in reduced.limbs().iter().enumerate() {
            limbs[i] = l;
        }
        Self::from_canonical(limbs)
    }

    /// Construct by reducing 32 big-endian bytes.
    pub fn from_bytes_be_reduce(bytes: &[u8]) -> Self {
        Self::from_biguint(&BigUint::from_bytes_be(bytes))
    }

    /// Canonical (non-Montgomery) little-endian limbs.
    pub fn to_canonical(&self) -> [u64; 4] {
        // Montgomery reduction of the raw representation (multiply by 1).
        let one = [1u64, 0, 0, 0];
        mont_mul::<P>(&self.0, &one)
    }

    /// Canonical value as a [`BigUint`].
    pub fn to_biguint(&self) -> BigUint {
        BigUint::from_limbs(self.to_canonical().to_vec())
    }

    /// Canonical value as 32 big-endian bytes.
    pub fn to_bytes_be(&self) -> [u8; 32] {
        let c = self.to_canonical();
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[(3 - i) * 8..(4 - i) * 8].copy_from_slice(&c[i].to_be_bytes());
        }
        out
    }

    /// Uniform random field element.
    pub fn random(rng: &mut impl rand::Rng) -> Self {
        loop {
            let mut limbs = [0u64; 4];
            for l in &mut limbs {
                *l = rng.gen();
            }
            // Mask the top bits to the modulus bit length (254) to cut rejections.
            limbs[3] &= (1u64 << 62) - 1;
            if lt(&limbs, &P::MODULUS) {
                return Self::from_canonical(limbs);
            }
        }
    }

    /// `self + other`.
    #[inline]
    pub fn add(&self, other: &Self) -> Self {
        let mut carry = 0u64;
        let mut out = [0u64; 4];
        for i in 0..4 {
            out[i] = adc(self.0[i], other.0[i], &mut carry);
        }
        reduce_once::<P>(&mut out, carry != 0);
        Field(out, PhantomData)
    }

    /// `self * 2`.
    #[inline]
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// `self - other`.
    #[inline]
    pub fn sub(&self, other: &Self) -> Self {
        let mut borrow = 0u64;
        let mut out = [0u64; 4];
        for i in 0..4 {
            out[i] = sbb(self.0[i], other.0[i], &mut borrow);
        }
        if borrow != 0 {
            let mut carry = 0u64;
            for i in 0..4 {
                out[i] = adc(out[i], P::MODULUS[i], &mut carry);
            }
        }
        Field(out, PhantomData)
    }

    /// `-self`.
    #[inline]
    pub fn neg(&self) -> Self {
        if self.is_zero() {
            *self
        } else {
            let mut borrow = 0u64;
            let mut out = [0u64; 4];
            for i in 0..4 {
                out[i] = sbb(P::MODULUS[i], self.0[i], &mut borrow);
            }
            Field(out, PhantomData)
        }
    }

    /// `self * other` (Montgomery CIOS).
    #[inline]
    pub fn mul(&self, other: &Self) -> Self {
        Field(mont_mul::<P>(&self.0, &other.0), PhantomData)
    }

    /// `self^2`.
    #[inline]
    pub fn square(&self) -> Self {
        self.mul(self)
    }

    /// `self^exp` where `exp` is little-endian limbs (canonical integer).
    pub fn pow(&self, exp: &[u64]) -> Self {
        let mut result = Self::one();
        let mut found_one = false;
        for i in (0..exp.len() * 64).rev() {
            if found_one {
                result = result.square();
            }
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                found_one = true;
                result = result.mul(self);
            }
        }
        result
    }

    /// Multiplicative inverse; `None` for zero. Uses Fermat: `a^(p-2)`.
    pub fn invert(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let mut exp = P::MODULUS;
        // p - 2 (p is odd and > 2, so no borrow beyond limb 0 unless limb0 < 2).
        let (d, borrow) = exp[0].overflowing_sub(2);
        exp[0] = d;
        if borrow {
            let mut i = 1;
            loop {
                let (d, b) = exp[i].overflowing_sub(1);
                exp[i] = d;
                if !b {
                    break;
                }
                i += 1;
            }
        }
        Some(self.pow(&exp))
    }

    /// Square root when the modulus is ≡ 3 (mod 4): `a^((p+1)/4)`.
    /// Returns `None` if `self` is not a quadratic residue.
    pub fn sqrt(&self) -> Option<Self> {
        debug_assert_eq!(P::MODULUS[0] & 3, 3, "sqrt requires p = 3 mod 4");
        // (p+1)/4: add 1 then shift right 2.
        let mut e = P::MODULUS;
        let mut carry = 1u64;
        for l in &mut e {
            let (s, c) = l.overflowing_add(carry);
            *l = s;
            carry = c as u64;
        }
        // shift right by 2
        for i in 0..4 {
            let hi = if i + 1 < 4 { e[i + 1] } else { carry };
            e[i] = (e[i] >> 2) | (hi << 62);
        }
        let root = self.pow(&e);
        if root.square() == *self {
            Some(root)
        } else {
            None
        }
    }

    /// True iff the canonical representative is odd (parity for point
    /// compression / deterministic sign choice).
    pub fn is_odd(&self) -> bool {
        self.to_canonical()[0] & 1 == 1
    }
}

/// `a < b` on 4-limb little-endian values.
#[inline]
fn lt(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

#[inline]
fn reduce_once<P: FieldParams>(out: &mut [u64; 4], overflow: bool) {
    if overflow || !lt(out, &P::MODULUS) {
        let mut borrow = 0u64;
        for i in 0..4 {
            out[i] = sbb(out[i], P::MODULUS[i], &mut borrow);
        }
    }
}

/// 4-limb Montgomery multiplication (CIOS).
#[inline]
fn mont_mul<P: FieldParams>(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let n = &P::MODULUS;
    let mut t = [0u64; 6];
    for i in 0..4 {
        let mut carry = 0u64;
        for j in 0..4 {
            t[j] = mac(t[j], a[i], b[j], &mut carry);
        }
        let mut c = 0u64;
        t[4] = adc(t[4], carry, &mut c);
        t[5] = c;

        let m = t[0].wrapping_mul(P::INV);
        let mut carry = 0u64;
        // (t[0] + m*n[0]) is divisible by 2^64; we only need the carry.
        mac(t[0], m, n[0], &mut carry);
        for j in 1..4 {
            t[j - 1] = mac(t[j], m, n[j], &mut carry);
        }
        let mut c = 0u64;
        t[3] = adc(t[4], carry, &mut c);
        t[4] = t[5] + c;
        t[5] = 0;
    }
    let mut out = [t[0], t[1], t[2], t[3]];
    reduce_once::<P>(&mut out, t[4] != 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// Re-derive every hard-coded constant from first principles.
    #[test]
    fn params_are_self_consistent() {
        fn check<P: FieldParams>() {
            let x = BigUint::from_dec("4965661367192848881").unwrap();
            let x2 = x.mul(&x);
            let x3 = x2.mul(&x);
            let x4 = x3.mul(&x);
            let c36 = BigUint::from_u64(36);
            let c24 = BigUint::from_u64(24);
            let c18 = BigUint::from_u64(18);
            let c6 = BigUint::from_u64(6);
            let p = c36
                .mul(&x4)
                .add(&c36.mul(&x3))
                .add(&c24.mul(&x2))
                .add(&c6.mul(&x))
                .add(&BigUint::one());
            let r = c36
                .mul(&x4)
                .add(&c36.mul(&x3))
                .add(&c18.mul(&x2))
                .add(&c6.mul(&x))
                .add(&BigUint::one());
            let modulus = BigUint::from_limbs(P::MODULUS.to_vec());
            assert!(
                modulus == p || modulus == r,
                "{}: modulus does not match the BN parametrization",
                P::NAME
            );
            // INV
            let mut inv = 1u64;
            for _ in 0..6 {
                inv = inv.wrapping_mul(2u64.wrapping_sub(P::MODULUS[0].wrapping_mul(inv)));
            }
            assert_eq!(inv.wrapping_neg(), P::INV, "{}: INV mismatch", P::NAME);
            // R, R2
            let r1 = BigUint::one().shl(256).rem(&modulus);
            let r2 = BigUint::one().shl(512).rem(&modulus);
            let pad = |v: &BigUint| {
                let mut l = [0u64; 4];
                for (i, &x) in v.limbs().iter().enumerate() {
                    l[i] = x;
                }
                l
            };
            assert_eq!(pad(&r1), P::R, "{}: R mismatch", P::NAME);
            assert_eq!(pad(&r2), P::R2, "{}: R2 mismatch", P::NAME);
        }
        check::<FpParams>();
        check::<FrParams>();
    }

    #[test]
    fn field_axioms_random() {
        let mut r = rng();
        for _ in 0..50 {
            let a = Fp::random(&mut r);
            let b = Fp::random(&mut r);
            let c = Fp::random(&mut r);
            assert_eq!(a.add(&b), b.add(&a));
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            assert_eq!(a.add(&a.neg()), Fp::zero());
            assert_eq!(a.sub(&b).add(&b), a);
        }
    }

    #[test]
    fn mul_matches_biguint() {
        let mut r = rng();
        let p = BigUint::from_limbs(FpParams::MODULUS.to_vec());
        for _ in 0..20 {
            let a = Fp::random(&mut r);
            let b = Fp::random(&mut r);
            let expect = a.to_biguint().mul(&b.to_biguint()).rem(&p);
            assert_eq!(a.mul(&b).to_biguint(), expect);
        }
    }

    #[test]
    fn invert_round_trip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fp::one());
        }
        assert!(Fp::zero().invert().is_none());
    }

    #[test]
    fn sqrt_of_squares() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == a.neg());
        }
    }

    #[test]
    fn pow_small_cases() {
        let three = Fp::from_u64(3);
        assert_eq!(three.pow(&[0]), Fp::one());
        assert_eq!(three.pow(&[1]), three);
        assert_eq!(three.pow(&[5]), Fp::from_u64(243));
    }

    #[test]
    fn canonical_round_trip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fr::random(&mut r);
            assert_eq!(Fr::from_canonical(a.to_canonical()), a);
            assert_eq!(Fr::from_bytes_be_reduce(&a.to_bytes_be()), a);
        }
    }

    #[test]
    fn fr_modulus_differs_from_fp() {
        assert_ne!(FpParams::MODULUS, FrParams::MODULUS);
    }
}
