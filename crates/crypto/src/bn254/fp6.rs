//! Cubic extension `Fp6 = Fp2[v]/(v³ - ξ)`, ξ = 9 + u.

use super::fp2::Fp2;

/// An element `c0 + c1·v + c2·v²` of Fp6.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Fp6 {
    pub c0: Fp2,
    pub c1: Fp2,
    pub c2: Fp2,
}

impl Fp6 {
    /// The additive identity.
    pub fn zero() -> Self {
        Fp6 {
            c0: Fp2::zero(),
            c1: Fp2::zero(),
            c2: Fp2::zero(),
        }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Fp6 {
            c0: Fp2::one(),
            c1: Fp2::zero(),
            c2: Fp2::zero(),
        }
    }

    /// Construct from components.
    pub fn new(c0: Fp2, c1: Fp2, c2: Fp2) -> Self {
        Fp6 { c0, c1, c2 }
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    /// Uniform random element.
    pub fn random(rng: &mut impl rand::Rng) -> Self {
        Fp6 {
            c0: Fp2::random(rng),
            c1: Fp2::random(rng),
            c2: Fp2::random(rng),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        Fp6 {
            c0: self.c0.add(&other.c0),
            c1: self.c1.add(&other.c1),
            c2: self.c2.add(&other.c2),
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        Fp6 {
            c0: self.c0.sub(&other.c0),
            c1: self.c1.sub(&other.c1),
            c2: self.c2.sub(&other.c2),
        }
    }

    /// `-self`.
    pub fn neg(&self) -> Self {
        Fp6 {
            c0: self.c0.neg(),
            c1: self.c1.neg(),
            c2: self.c2.neg(),
        }
    }

    /// `self * other` with reduction v³ = ξ.
    pub fn mul(&self, other: &Self) -> Self {
        let a0b0 = self.c0.mul(&other.c0);
        let a1b1 = self.c1.mul(&other.c1);
        let a2b2 = self.c2.mul(&other.c2);
        // c0 = a0b0 + ξ(a1b2 + a2b1)
        let t0 = self
            .c1
            .mul(&other.c2)
            .add(&self.c2.mul(&other.c1))
            .mul_by_nonresidue();
        // c1 = a0b1 + a1b0 + ξ a2b2
        let t1 = self
            .c0
            .mul(&other.c1)
            .add(&self.c1.mul(&other.c0))
            .add(&a2b2.mul_by_nonresidue());
        // c2 = a0b2 + a1b1 + a2b0
        let t2 = self
            .c0
            .mul(&other.c2)
            .add(&a1b1)
            .add(&self.c2.mul(&other.c0));
        Fp6 {
            c0: a0b0.add(&t0),
            c1: t1,
            c2: t2,
        }
    }

    /// `self²`.
    pub fn square(&self) -> Self {
        self.mul(self)
    }

    /// Multiply by `v` (cyclic shift with ξ reduction): `(ξ·c2, c0, c1)`.
    pub fn mul_by_v(&self) -> Self {
        Fp6 {
            c0: self.c2.mul_by_nonresidue(),
            c1: self.c0,
            c2: self.c1,
        }
    }

    /// Multiply by the sparse element `b0 + b1·v` (two low coefficients
    /// only) — the Fp6 half of a Miller-loop line function.
    pub fn mul_by_01(&self, b0: &Fp2, b1: &Fp2) -> Self {
        // (c0 + c1 v + c2 v²)(b0 + b1 v)
        //   = (c0·b0 + ξ·c2·b1) + (c0·b1 + c1·b0) v + (c1·b1 + c2·b0) v²
        let a0 = self.c0.mul(b0);
        let a1 = self.c1.mul(b0);
        let a2 = self.c2.mul(b0);
        Fp6 {
            c0: a0.add(&self.c2.mul(b1).mul_by_nonresidue()),
            c1: a1.add(&self.c0.mul(b1)),
            c2: a2.add(&self.c1.mul(b1)),
        }
    }

    /// Scale every coefficient by a base-field element.
    pub fn mul_fp(&self, k: &super::fp::Fp) -> Self {
        Fp6 {
            c0: self.c0.mul_fp(k),
            c1: self.c1.mul_fp(k),
            c2: self.c2.mul_fp(k),
        }
    }

    /// Scale by an Fp2 element.
    pub fn mul_fp2(&self, k: &Fp2) -> Self {
        Fp6 {
            c0: self.c0.mul(k),
            c1: self.c1.mul(k),
            c2: self.c2.mul(k),
        }
    }

    /// Multiplicative inverse (standard cubic-extension formula).
    pub fn invert(&self) -> Option<Self> {
        let c0 = self
            .c0
            .square()
            .sub(&self.c1.mul(&self.c2).mul_by_nonresidue());
        let c1 = self
            .c2
            .square()
            .mul_by_nonresidue()
            .sub(&self.c0.mul(&self.c1));
        let c2 = self.c1.square().sub(&self.c0.mul(&self.c2));
        let t = self
            .c0
            .mul(&c0)
            .add(&self.c2.mul(&c1).add(&self.c1.mul(&c2)).mul_by_nonresidue());
        let t_inv = t.invert()?;
        Some(Fp6 {
            c0: c0.mul(&t_inv),
            c1: c1.mul(&t_inv),
            c2: c2.mul(&t_inv),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(13)
    }

    #[test]
    fn v_cubed_is_xi() {
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        let v3 = v.mul(&v).mul(&v);
        let xi = Fp6::new(Fp2::one().mul_by_nonresidue(), Fp2::zero(), Fp2::zero());
        assert_eq!(v3, xi);
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp6::random(&mut r);
            let b = Fp6::random(&mut r);
            let c = Fp6::random(&mut r);
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            assert_eq!(a.square(), a.mul(&a));
        }
    }

    #[test]
    fn inversion_round_trip() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp6::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fp6::one());
        }
        assert!(Fp6::zero().invert().is_none());
    }

    #[test]
    fn mul_by_v_matches_explicit() {
        let mut r = rng();
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        for _ in 0..10 {
            let a = Fp6::random(&mut r);
            assert_eq!(a.mul_by_v(), a.mul(&v));
        }
    }
}
