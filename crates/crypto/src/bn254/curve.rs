//! Generic short-Weierstrass curve arithmetic (`y² = x³ + b`, a = 0) in
//! Jacobian coordinates, shared by G1 (over Fp) and G2 (over Fp2).

use std::fmt;

/// Minimal field-element interface the curve formulas need.
pub trait Felt: Copy + Clone + PartialEq + Eq + fmt::Debug {
    /// Additive identity.
    fn f_zero() -> Self;
    /// Multiplicative identity.
    fn f_one() -> Self;
    /// True iff zero.
    fn f_is_zero(&self) -> bool;
    /// Addition.
    fn f_add(&self, o: &Self) -> Self;
    /// Subtraction.
    fn f_sub(&self, o: &Self) -> Self;
    /// Negation.
    fn f_neg(&self) -> Self;
    /// Multiplication.
    fn f_mul(&self, o: &Self) -> Self;
    /// Squaring.
    fn f_square(&self) -> Self;
    /// Doubling.
    fn f_double(&self) -> Self;
    /// Inversion (`None` for zero).
    fn f_invert(&self) -> Option<Self>;
}

macro_rules! impl_felt {
    ($t:ty) => {
        impl Felt for $t {
            fn f_zero() -> Self {
                <$t>::zero()
            }
            fn f_one() -> Self {
                <$t>::one()
            }
            fn f_is_zero(&self) -> bool {
                self.is_zero()
            }
            fn f_add(&self, o: &Self) -> Self {
                self.add(o)
            }
            fn f_sub(&self, o: &Self) -> Self {
                self.sub(o)
            }
            fn f_neg(&self) -> Self {
                self.neg()
            }
            fn f_mul(&self, o: &Self) -> Self {
                self.mul(o)
            }
            fn f_square(&self) -> Self {
                self.square()
            }
            fn f_double(&self) -> Self {
                self.double()
            }
            fn f_invert(&self) -> Option<Self> {
                self.invert()
            }
        }
    };
}

impl_felt!(super::fp::Fp);
impl_felt!(super::fp2::Fp2);

/// Curve specification: the base field and the constant `b`.
pub trait CurveSpec: 'static + Copy + Clone + PartialEq + Eq + fmt::Debug {
    /// Base field of the curve.
    type F: Felt;
    /// The curve constant `b` in `y² = x³ + b`.
    fn b() -> Self::F;
    /// Human-readable group name.
    const NAME: &'static str;
}

/// A point in Jacobian projective coordinates `(X : Y : Z)`, affine
/// `(X/Z², Y/Z³)`; `Z = 0` encodes the point at infinity.
#[derive(Copy, Clone, Debug)]
pub struct Point<C: CurveSpec> {
    pub x: C::F,
    pub y: C::F,
    pub z: C::F,
}

/// An affine point or infinity.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Affine<C: CurveSpec> {
    /// The identity element.
    Infinity,
    /// A finite point `(x, y)`.
    Coords(C::F, C::F),
}

impl<C: CurveSpec> Point<C> {
    /// The identity element.
    pub fn infinity() -> Self {
        Point {
            x: C::F::f_one(),
            y: C::F::f_one(),
            z: C::F::f_zero(),
        }
    }

    /// Construct from affine coordinates (unchecked; see
    /// [`Affine::is_on_curve`]).
    pub fn from_affine_coords(x: C::F, y: C::F) -> Self {
        Point {
            x,
            y,
            z: C::F::f_one(),
        }
    }

    /// Lift an [`Affine`] point.
    pub fn from_affine(a: &Affine<C>) -> Self {
        match a {
            Affine::Infinity => Self::infinity(),
            Affine::Coords(x, y) => Self::from_affine_coords(*x, *y),
        }
    }

    /// True iff this is the identity.
    pub fn is_infinity(&self) -> bool {
        self.z.f_is_zero()
    }

    /// Point doubling (a = 0 Jacobian formulas).
    pub fn double(&self) -> Self {
        if self.is_infinity() || self.y.f_is_zero() {
            return Self::infinity();
        }
        let a = self.x.f_square();
        let b = self.y.f_square();
        let c = b.f_square();
        let d = self.x.f_add(&b).f_square().f_sub(&a).f_sub(&c).f_double();
        let e = a.f_double().f_add(&a);
        let f = e.f_square();
        let x3 = f.f_sub(&d.f_double());
        let c8 = c.f_double().f_double().f_double();
        let y3 = e.f_mul(&d.f_sub(&x3)).f_sub(&c8);
        let z3 = self.y.f_mul(&self.z).f_double();
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Point addition.
    pub fn add(&self, other: &Self) -> Self {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.f_square();
        let z2z2 = other.z.f_square();
        let u1 = self.x.f_mul(&z2z2);
        let u2 = other.x.f_mul(&z1z1);
        let s1 = self.y.f_mul(&other.z).f_mul(&z2z2);
        let s2 = other.y.f_mul(&self.z).f_mul(&z1z1);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::infinity();
        }
        let h = u2.f_sub(&u1);
        let i = h.f_double().f_square();
        let j = h.f_mul(&i);
        let r = s2.f_sub(&s1).f_double();
        let v = u1.f_mul(&i);
        let x3 = r.f_square().f_sub(&j).f_sub(&v.f_double());
        let y3 = r.f_mul(&v.f_sub(&x3)).f_sub(&s1.f_mul(&j).f_double());
        let z3 = self
            .z
            .f_add(&other.z)
            .f_square()
            .f_sub(&z1z1)
            .f_sub(&z2z2)
            .f_mul(&h);
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Point {
            x: self.x,
            y: self.y.f_neg(),
            z: self.z,
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Scalar multiplication by a little-endian limb scalar.
    ///
    /// Uses width-4 wNAF with a precomputed table of odd multiples
    /// {P, 3P, 5P, 7P}: ~n doublings plus ~n/5 additions for an n-bit
    /// scalar, versus ~n/2 additions for plain double-and-add. Matches
    /// [`Point::mul_scalar_binary`] bit-for-bit (property-tested).
    pub fn mul_scalar(&self, k: &[u64]) -> Self {
        if self.is_infinity() {
            return Self::infinity();
        }
        let naf = wnaf_digits(k, 4);
        if naf.is_empty() {
            return Self::infinity();
        }
        // Odd multiples 1P, 3P, 5P, 7P.
        let twice = self.double();
        let mut table = [*self; 4];
        for i in 1..4 {
            table[i] = table[i - 1].add(&twice);
        }
        let mut acc = Self::infinity();
        for &d in naf.iter().rev() {
            acc = acc.double();
            if d > 0 {
                acc = acc.add(&table[d as usize >> 1]);
            } else if d < 0 {
                acc = acc.add(&table[(-d) as usize >> 1].neg());
            }
        }
        acc
    }

    /// Reference binary double-and-add scalar multiplication (MSB first).
    /// Kept as the oracle for wNAF property tests; prefer
    /// [`Point::mul_scalar`].
    pub fn mul_scalar_binary(&self, k: &[u64]) -> Self {
        let mut acc = Self::infinity();
        let mut started = false;
        for i in (0..k.len() * 64).rev() {
            if started {
                acc = acc.double();
            }
            if (k[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(self);
                started = true;
            }
        }
        acc
    }

    /// Convert to affine coordinates.
    pub fn to_affine(&self) -> Affine<C> {
        if self.is_infinity() {
            return Affine::Infinity;
        }
        let z_inv = self.z.f_invert().expect("nonzero z");
        let z_inv2 = z_inv.f_square();
        let z_inv3 = z_inv2.f_mul(&z_inv);
        Affine::Coords(self.x.f_mul(&z_inv2), self.y.f_mul(&z_inv3))
    }
}

/// Width-`w` non-adjacent-form digits of a little-endian limb scalar:
/// little-endian digits, each zero or odd with `|d| < 2^(w-1)`, at most
/// one nonzero in any `w` consecutive positions. Empty for zero. At
/// `w = 2` this is the plain signed NAF (used by the final
/// exponentiation's exponent cache).
pub(crate) fn wnaf_digits(k: &[u64], w: u32) -> Vec<i8> {
    debug_assert!((2..=7).contains(&w));
    let mut n = k.to_vec();
    n.push(0); // headroom for the +|d| carry
    let mask = (1u64 << w) - 1;
    let half = 1i64 << (w - 1);
    let mut digits = Vec::with_capacity(k.len() * 64 + 1);
    while n.iter().any(|&l| l != 0) {
        let d = if n[0] & 1 == 1 {
            let mut d = (n[0] & mask) as i64;
            if d >= half {
                d -= 1 << w;
            }
            if d > 0 {
                limbs_sub_small(&mut n, d as u64);
            } else {
                limbs_add_small(&mut n, (-d) as u64);
            }
            d as i8
        } else {
            0
        };
        digits.push(d);
        limbs_shr1(&mut n);
    }
    digits
}

fn limbs_sub_small(n: &mut [u64], v: u64) {
    let (d, mut borrow) = n[0].overflowing_sub(v);
    n[0] = d;
    let mut i = 1;
    while borrow {
        let (d, b) = n[i].overflowing_sub(1);
        n[i] = d;
        borrow = b;
        i += 1;
    }
}

fn limbs_add_small(n: &mut [u64], v: u64) {
    let (s, mut carry) = n[0].overflowing_add(v);
    n[0] = s;
    let mut i = 1;
    while carry {
        let (s, c) = n[i].overflowing_add(1);
        n[i] = s;
        carry = c;
        i += 1;
    }
}

fn limbs_shr1(n: &mut [u64]) {
    for i in 0..n.len() {
        let hi = n.get(i + 1).copied().unwrap_or(0);
        n[i] = (n[i] >> 1) | (hi << 63);
    }
}

impl<C: CurveSpec> PartialEq for Point<C> {
    fn eq(&self, other: &Self) -> bool {
        match (self.is_infinity(), other.is_infinity()) {
            (true, true) => return true,
            (true, false) | (false, true) => return false,
            _ => {}
        }
        // Cross-multiplied comparison avoids inversions.
        let z1z1 = self.z.f_square();
        let z2z2 = other.z.f_square();
        if self.x.f_mul(&z2z2) != other.x.f_mul(&z1z1) {
            return false;
        }
        let z1c = z1z1.f_mul(&self.z);
        let z2c = z2z2.f_mul(&other.z);
        self.y.f_mul(&z2c) == other.y.f_mul(&z1c)
    }
}

impl<C: CurveSpec> Eq for Point<C> {}

impl<C: CurveSpec> Affine<C> {
    /// True iff the identity.
    pub fn is_infinity(&self) -> bool {
        matches!(self, Affine::Infinity)
    }

    /// Check the curve equation `y² = x³ + b`.
    pub fn is_on_curve(&self) -> bool {
        match self {
            Affine::Infinity => true,
            Affine::Coords(x, y) => y.f_square() == x.f_square().f_mul(x).f_add(&C::b()),
        }
    }
}
