//! BN254 ("alt_bn128") pairing-friendly elliptic curve.
//!
//! The curve is `y^2 = x^3 + 3` over the 254-bit prime `p`, with `#E(Fp) = r`
//! prime (cofactor 1). G2 lives on the sextic D-twist `y'^2 = x'^3 + 3/(9+u)`
//! over Fp2. A 160-bit-security BN curve is exactly the "160-bit ECC"
//! setting of the paper's Table 3.
//!
//! # The prepared-pairing pipeline
//!
//! The pairing is the reduced **ate pairing**
//! `e(P, Q) = f_{T,psi(Q)}(P)^((p^12-1)/r)` with loop count `T = t - 1 =
//! 6x²` (127 bits, half the group order) and denominator elimination.
//! Verification workloads evaluate products of pairings against *fixed*
//! G2 points (the generator and the signer's public key), so the engine is
//! organized around three amortizations:
//!
//! 1. [`pairing::G2Prepared`] runs the Miller loop's twist arithmetic once
//!    per G2 point and stores the line coefficients; each pairing against
//!    the point is then inversion-free sparse folding.
//! 2. [`pairing::multi_miller_loop`] accumulates any number of
//!    `(G1, G2Prepared)` terms into one Fp12 value under a single shared
//!    squaring chain.
//! 3. [`pairing::final_exponentiation`] is paid once per *product* rather
//!    than once per pairing, and its hard part walks a cached signed-NAF
//!    exponent with Granger–Scott cyclotomic squarings.
//!
//! Scalar multiplication in G1/G2 uses width-4 wNAF with precomputed
//! odd-multiple tables (see [`curve::Point::mul_scalar`]).

pub mod curve;
pub mod fp;
pub mod fp12;
pub mod fp2;
pub mod fp6;
pub mod g1;
pub mod g2;
pub mod pairing;

pub use curve::Affine;
pub use fp::{Fp, Fr};
pub use fp12::Fp12;
pub use fp2::Fp2;
pub use fp6::Fp6;
pub use g1::{G1Affine, G1};
pub use g2::{G2Affine, G2};
pub use pairing::{final_exponentiation, multi_miller_loop, pairing, pairing_affine, G2Prepared};
