//! BN254 ("alt_bn128") pairing-friendly elliptic curve.
//!
//! The curve is `y^2 = x^3 + 3` over the 254-bit prime `p`, with `#E(Fp) = r`
//! prime (cofactor 1). G2 lives on the sextic D-twist `y'^2 = x'^3 + 3/(9+u)`
//! over Fp2. The pairing implemented is the reduced **Tate pairing**
//! `e(P, Q) = f_{r,P}(psi(Q))^((p^12-1)/r)` with denominator elimination —
//! deliberately the simplest correct construction (the Miller loop walks the
//! 254-bit group order and needs no Frobenius-twisted correction steps). A
//! 160-bit-security BN curve is exactly the "160-bit ECC" setting of the
//! paper's Table 3.

pub mod curve;
pub mod fp;
pub mod fp12;
pub mod fp2;
pub mod fp6;
pub mod g1;
pub mod g2;
pub mod pairing;

pub use curve::Affine;
pub use fp::{Fp, Fr};
pub use fp12::Fp12;
pub use fp2::Fp2;
pub use fp6::Fp6;
pub use g1::{G1, G1Affine};
pub use g2::{G2, G2Affine};
pub use pairing::{pairing, pairing_affine};
