//! Batched multi-pairing engine: the reduced **ate pairing**
//! `e: G1 × G2 → GT ⊂ Fp12` with precomputed G2 lines and a shared final
//! exponentiation.
//!
//! The Miller loop walks the bits of the trace parameter `T = t - 1 = 6x²`
//! (~127 bits — half the group order's 254) over multiples of the **G2**
//! point on the twist: `e(P, Q) = f_{T,ψ(Q)}(P)^((p^12-1)/r)` with ψ the
//! untwist `(x', y') ↦ (x'·w², y'·w³)`. Because the loop point lives in G2,
//! every line coefficient depends only on Q — [`G2Prepared`] computes them
//! once per point (one inversion per step, paid at preparation time), and
//! each pairing evaluation is reduced to sparse Fp12 folds of the
//! precomputed lines at P's two Fp coordinates. Verification always pairs
//! against the same public key and generator, so preparation amortizes to
//! zero across queries.
//!
//! [`multi_miller_loop`] accumulates any number of pairings into a single
//! Miller value — one shared `f` squaring chain — and
//! [`final_exponentiation`] is paid **once** per product instead of once
//! per pairing. The final exponentiation itself uses the cyclotomic
//! decomposition `(p^12-1)/r = (p^6-1)·(p^2+1)·((p^4-p^2+1)/r)`: the easy
//! factors are a conjugation, an inversion and one p²-Frobenius; the hard
//! part is a signed-NAF walk of the cached exponent using Granger–Scott
//! cyclotomic squarings (~3× cheaper than generic Fp12 squarings, with
//! inversion free by conjugation).
//!
//! Vertical lines evaluate into the subfield Fp6 and are erased by the
//! final exponentiation (denominator elimination), so they are skipped.
//! Bilinearity, non-degeneracy, and multi-pairing consistency are
//! property-tested.

use std::sync::OnceLock;

use super::curve::Affine;
use super::fp::{FieldParams, Fp, FpParams, FrParams};
use super::fp12::Fp12;
use super::fp2::Fp2;
use super::fp6::Fp6;
use super::g1::{G1Affine, G1};
use super::g2::{G2Affine, G2};
use crate::bigint::BigUint;

/// The BN parameter `x`; `p`, `r`, and `t` are polynomials in it.
const BN_X: u64 = 4965661367192848881;

/// Little-endian limbs and bit length of the ate loop count `T = 6x²`.
fn ate_loop() -> &'static (Vec<u64>, usize) {
    static T: OnceLock<(Vec<u64>, usize)> = OnceLock::new();
    T.get_or_init(|| {
        let t = 6 * (BN_X as u128) * (BN_X as u128);
        let limbs = vec![t as u64, (t >> 64) as u64];
        let bits = 128 - t.leading_zeros() as usize;
        (limbs, bits)
    })
}

/// Little-endian limbs of the hard exponent `(p⁴ - p² + 1)/r` (the
/// cyclotomic-polynomial part of the final exponentiation; the remaining
/// factors `(p⁶-1)(p²+1)` are the cheap easy part).
pub fn hard_exponent() -> &'static [u64] {
    &hard_exponent_parts().0
}

/// Cached non-adjacent form of [`hard_exponent`], little-endian digits in
/// {-1, 0, 1}. The NAF has ~1/3 nonzero density versus ~1/2 for binary,
/// and the -1 digits cost only a conjugation on unitary elements.
pub fn hard_exponent_naf() -> &'static [i8] {
    &hard_exponent_parts().1
}

fn hard_exponent_parts() -> &'static (Vec<u64>, Vec<i8>) {
    static E: OnceLock<(Vec<u64>, Vec<i8>)> = OnceLock::new();
    E.get_or_init(|| {
        let p = BigUint::from_limbs(FpParams::MODULUS.to_vec());
        let r = BigUint::from_limbs(FrParams::MODULUS.to_vec());
        let p2 = p.mul(&p);
        let p4 = p2.mul(&p2);
        let phi12 = p4.sub(&p2).add(&BigUint::one());
        let (q, rem) = phi12.divrem(&r);
        assert!(rem.is_zero(), "r must divide p^4 - p^2 + 1");
        // Width-2 wNAF is the plain signed NAF.
        let naf = super::curve::wnaf_digits(q.limbs(), 2);
        (q.limbs().to_vec(), naf)
    })
}

/// Constants `γ^k = ξ^(k·(p²-1)/6)` scaling the Fp12 basis slots under the
/// p²-power Frobenius (which fixes Fp2 coefficients).
fn frobenius_p2_gammas() -> &'static [Fp2; 5] {
    static G: OnceLock<[Fp2; 5]> = OnceLock::new();
    G.get_or_init(|| {
        let p = BigUint::from_limbs(FpParams::MODULUS.to_vec());
        let (e, rem) = p.mul(&p).sub(&BigUint::one()).divrem(&BigUint::from_u64(6));
        assert!(rem.is_zero(), "6 must divide p^2 - 1");
        let xi = Fp2::new(Fp::from_u64(9), Fp::one());
        let g1 = xi.pow(e.limbs());
        let g2 = g1.mul(&g1);
        let g3 = g2.mul(&g1);
        let g4 = g3.mul(&g1);
        let g5 = g4.mul(&g1);
        [g1, g2, g3, g4, g5]
    })
}

/// The Frobenius power `x ↦ x^(p²)` on Fp12: Fp2 coefficients are fixed;
/// the basis element `v^i·w^j = ξ^((2i+j)/6)` picks up `γ^(2i+j)`.
pub fn frobenius_p2(f: &Fp12) -> Fp12 {
    let g = frobenius_p2_gammas();
    Fp12 {
        c0: Fp6::new(f.c0.c0, f.c0.c1.mul(&g[1]), f.c0.c2.mul(&g[3])),
        c1: Fp6::new(f.c1.c0.mul(&g[0]), f.c1.c1.mul(&g[2]), f.c1.c2.mul(&g[4])),
    }
}

/// One precomputed Miller-loop line for a fixed G2 point: `(-λ, λ·x_T -
/// y_T)` with λ the twist slope at the step's loop point. Evaluated at a
/// G1 point `(xp, yp)` the line is the sparse Fp12 element `yp + (-λ·xp)·w
/// + (λ·x_T - y_T)·v·w`.
type LineCoeff = (Fp2, Fp2);

/// A G2 point with its Miller-loop line coefficients precomputed.
///
/// Preparation performs the whole ate loop's twist arithmetic (one Fp2
/// inversion per step) once; every subsequent pairing against this point
/// only folds the stored lines. Verifiers should build this once per
/// public key / generator and reuse it for the key's lifetime.
#[derive(Clone, Debug)]
pub struct G2Prepared {
    coeffs: Vec<LineCoeff>,
    infinity: bool,
}

impl G2Prepared {
    /// Prepare an affine G2 point.
    pub fn from_affine(q: &G2Affine) -> Self {
        let Affine::Coords(qx, qy) = q else {
            return G2Prepared {
                coeffs: Vec::new(),
                infinity: true,
            };
        };
        let q_pt = (*qx, *qy);
        let (loop_limbs, nbits) = ate_loop();
        let mut coeffs = Vec::with_capacity(nbits + nbits / 2);
        let mut t = q_pt;
        for i in (0..nbits - 1).rev() {
            coeffs.push(tangent_line(&mut t));
            if (loop_limbs[i / 64] >> (i % 64)) & 1 == 1 {
                coeffs.push(chord_line(&mut t, &q_pt));
            }
        }
        G2Prepared {
            coeffs,
            infinity: false,
        }
    }

    /// Prepare a (Jacobian) G2 point.
    pub fn new(q: &G2) -> Self {
        Self::from_affine(&q.to_affine())
    }

    /// True iff this is the point at infinity (pairs to 1 with everything).
    pub fn is_infinity(&self) -> bool {
        self.infinity
    }
}

impl From<&G2> for G2Prepared {
    fn from(q: &G2) -> Self {
        G2Prepared::new(q)
    }
}

/// Tangent line at `t` on the twist; advances `t` to `2t`.
fn tangent_line(t: &mut (Fp2, Fp2)) -> LineCoeff {
    let (x, y) = *t;
    debug_assert!(!y.is_zero(), "no 2-torsion in the order-r subgroup");
    let x2 = x.square();
    let three_x2 = x2.double().add(&x2);
    let lambda = three_x2.mul(&y.double().invert().expect("y nonzero"));
    let c = lambda.mul(&x).sub(&y);
    let x3 = lambda.square().sub(&x.double());
    let y3 = lambda.mul(&x.sub(&x3)).sub(&y);
    *t = (x3, y3);
    (lambda.neg(), c)
}

/// Chord line through `t` and `q` on the twist; advances `t` to `t + q`.
fn chord_line(t: &mut (Fp2, Fp2), q: &(Fp2, Fp2)) -> LineCoeff {
    let (x, y) = *t;
    debug_assert!(
        x != q.0,
        "ate loop scalar prefixes never revisit ±Q before the loop ends"
    );
    let lambda = q.1.sub(&y).mul(&q.0.sub(&x).invert().expect("x1 != x2"));
    let c = lambda.mul(&x).sub(&y);
    let x3 = lambda.square().sub(&x).sub(&q.0);
    let y3 = lambda.mul(&x.sub(&x3)).sub(&y);
    *t = (x3, y3);
    (lambda.neg(), c)
}

/// The product of Miller functions `∏_i f_{T,ψ(Q_i)}(P_i)` accumulated in
/// a single Fp12 value with one shared squaring chain.
///
/// Terms whose G1 point is infinity or whose prepared G2 point is infinity
/// contribute the identity. The result still needs
/// [`final_exponentiation`] — shared across all terms, which is the point:
/// a k-term product pays one final exponentiation instead of k.
pub fn multi_miller_loop(terms: &[(&G1Affine, &G2Prepared)]) -> Fp12 {
    // Active terms: finite on both sides, with P's affine coordinates out.
    let active: Vec<(Fp, Fp, &G2Prepared)> = terms
        .iter()
        .filter_map(|(p, prep)| match p {
            Affine::Coords(px, py) if !prep.infinity => Some((*px, *py, *prep)),
            _ => None,
        })
        .collect();
    if active.is_empty() {
        return Fp12::one();
    }

    let (loop_limbs, nbits) = ate_loop();
    let mut f = Fp12::one();
    let mut idx = 0usize;
    for i in (0..nbits - 1).rev() {
        if idx > 0 {
            f = f.square();
        }
        for (px, py, prep) in &active {
            let (neg_lambda, c) = &prep.coeffs[idx];
            f = f.mul_by_034(py, &neg_lambda.mul_fp(px), c);
        }
        idx += 1;
        if (loop_limbs[i / 64] >> (i % 64)) & 1 == 1 {
            for (px, py, prep) in &active {
                let (neg_lambda, c) = &prep.coeffs[idx];
                f = f.mul_by_034(py, &neg_lambda.mul_fp(px), c);
            }
            idx += 1;
        }
    }
    debug_assert!(active.iter().all(|(_, _, p)| p.coeffs.len() == idx));
    f
}

/// The Miller function `f_{T,ψ(Q)}(P)` (unreduced pairing value).
pub fn miller_loop(p: &G1Affine, q: &G2Affine) -> Fp12 {
    multi_miller_loop(&[(p, &G2Prepared::from_affine(q))])
}

/// Final exponentiation `f ↦ f^((p^12-1)/r)` via the cyclotomic
/// decomposition: easy part `(p^6-1)(p^2+1)` (conjugate, invert, one
/// p²-Frobenius), then the hard part as a signed-NAF walk with
/// Granger–Scott cyclotomic squarings.
pub fn final_exponentiation(f: &Fp12) -> Fp12 {
    // Easy part. x^(p^6) == conj(x) (tested), so f^(p^6-1) = conj(f)/f.
    let inv = f.invert().expect("Miller value is nonzero");
    let t0 = f.conjugate().mul(&inv);
    let t1 = frobenius_p2(&t0).mul(&t0);
    // t1 now satisfies t1^(p^4-p^2+1) = 1: cyclotomic squaring is valid
    // and inversion is conjugation.
    cyclotomic_pow_naf(&t1, hard_exponent_naf())
}

/// `base^e` for a unitary, cyclotomic-subgroup `base`, with `e` given as
/// little-endian NAF digits.
fn cyclotomic_pow_naf(base: &Fp12, naf: &[i8]) -> Fp12 {
    let base_inv = base.conjugate();
    let mut acc = Fp12::one();
    let mut started = false;
    for &d in naf.iter().rev() {
        if started {
            acc = acc.cyclotomic_square();
        }
        match d {
            1 => {
                acc = acc.mul(base);
                started = true;
            }
            -1 => {
                acc = acc.mul(&base_inv);
                started = true;
            }
            _ => {}
        }
    }
    acc
}

/// The reduced ate pairing on affine inputs.
pub fn pairing_affine(p: &G1Affine, q: &G2Affine) -> Fp12 {
    final_exponentiation(&miller_loop(p, q))
}

/// The reduced ate pairing `e(P, Q)`.
pub fn pairing(p: &G1, q: &G2) -> Fp12 {
    pairing_affine(&p.to_affine(), &q.to_affine())
}

#[cfg(test)]
mod tests {
    use super::super::fp::Fr;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pairing_non_degenerate() {
        let e = pairing(&G1::generator(), &G2::generator());
        assert!(!e.is_one(), "e(G1, G2) must not be 1");
        assert!(!e.is_zero());
    }

    #[test]
    fn pairing_has_order_r() {
        let e = pairing(&G1::generator(), &G2::generator());
        assert!(e.pow(&FrParams::MODULUS).is_one());
    }

    #[test]
    fn pairing_of_infinity_is_one() {
        assert!(pairing(&G1::infinity(), &G2::generator()).is_one());
        assert!(pairing(&G1::generator(), &G2::infinity()).is_one());
    }

    #[test]
    fn bilinear_in_g1() {
        let mut rng = StdRng::seed_from_u64(37);
        let a = Fr::random(&mut rng);
        let g1 = G1::generator();
        let g2 = G2::generator();
        let lhs = pairing(&g1.mul_fr(&a), &g2);
        let rhs = pairing(&g1, &g2).pow(&a.to_canonical());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_in_g2() {
        let mut rng = StdRng::seed_from_u64(41);
        let b = Fr::random(&mut rng);
        let g1 = G1::generator();
        let g2 = G2::generator();
        let lhs = pairing(&g1, &g2.mul_fr(&b));
        let rhs = pairing(&g1, &g2).pow(&b.to_canonical());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_both_sides() {
        let mut rng = StdRng::seed_from_u64(43);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let g1 = G1::generator();
        let g2 = G2::generator();
        let lhs = pairing(&g1.mul_fr(&a), &g2.mul_fr(&b));
        let rhs = pairing(&g1.mul_fr(&b), &g2.mul_fr(&a));
        assert_eq!(lhs, rhs);
        let direct = pairing(&g1, &g2)
            .pow(&a.to_canonical())
            .pow(&b.to_canonical());
        assert_eq!(lhs, direct);
    }

    #[test]
    fn additive_in_g1() {
        // e(P1 + P2, Q) = e(P1, Q) * e(P2, Q)
        let g1 = G1::generator();
        let g2 = G2::generator();
        let p1 = g1.mul_scalar(&[5]);
        let p2 = g1.mul_scalar(&[11]);
        let lhs = pairing(&p1.add(&p2), &g2);
        let rhs = pairing(&p1, &g2).mul(&pairing(&p2, &g2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn prepared_pairing_matches_fresh_preparation() {
        let g1 = G1::generator().mul_scalar(&[1234567]).to_affine();
        let q = G2::generator().mul_scalar(&[891011]);
        let prep = G2Prepared::new(&q);
        let via_prep = final_exponentiation(&multi_miller_loop(&[(&g1, &prep)]));
        let direct = pairing_affine(&g1, &q.to_affine());
        assert_eq!(via_prep, direct);
    }

    #[test]
    fn multi_miller_loop_matches_product_of_pairings() {
        // The tentpole invariant: one shared final exponentiation over the
        // accumulated Miller product equals the product of independently
        // reduced pairings.
        let mut rng = StdRng::seed_from_u64(47);
        let g1 = G1::generator();
        let g2 = G2::generator();
        for k in [1usize, 2, 5] {
            let points: Vec<(G1Affine, G2)> = (0..k)
                .map(|_| {
                    let a = Fr::random(&mut rng);
                    let b = Fr::random(&mut rng);
                    (g1.mul_fr(&a).to_affine(), g2.mul_fr(&b))
                })
                .collect();
            let preps: Vec<G2Prepared> = points.iter().map(|(_, q)| G2Prepared::new(q)).collect();
            let terms: Vec<(&G1Affine, &G2Prepared)> = points
                .iter()
                .zip(&preps)
                .map(|((p, _), prep)| (p, prep))
                .collect();
            let batched = final_exponentiation(&multi_miller_loop(&terms));
            let mut product = Fp12::one();
            for (p, q) in &points {
                product = product.mul(&pairing_affine(p, &q.to_affine()));
            }
            assert_eq!(batched, product, "k = {k}");
        }
    }

    #[test]
    fn multi_miller_loop_skips_infinities() {
        let g1 = G1::generator().to_affine();
        let prep = G2Prepared::new(&G2::generator());
        let inf_prep = G2Prepared::new(&G2::infinity());
        let inf_p = G1::infinity().to_affine();
        let mixed = multi_miller_loop(&[(&inf_p, &prep), (&g1, &inf_prep), (&g1, &prep)]);
        let plain = multi_miller_loop(&[(&g1, &prep)]);
        assert_eq!(mixed, plain);
        assert!(multi_miller_loop(&[]).is_one());
    }

    #[test]
    fn pairing_inverse_cancels() {
        // e(P, Q) * e(-P, Q) == 1: the multi-pairing verification equation
        // shape used by BLS.
        let p = G1::generator().mul_scalar(&[777]);
        let prep = G2Prepared::new(&G2::generator());
        let pa = p.to_affine();
        let na = p.neg().to_affine();
        let f = final_exponentiation(&multi_miller_loop(&[(&pa, &prep), (&na, &prep)]));
        assert!(f.is_one());
    }

    #[test]
    fn frobenius_p2_matches_generic_pow() {
        let mut rng = StdRng::seed_from_u64(53);
        let p = BigUint::from_limbs(FpParams::MODULUS.to_vec());
        let p2 = p.mul(&p);
        let a = Fp12::random(&mut rng);
        assert_eq!(frobenius_p2(&a), a.pow(p2.limbs()));
    }

    #[test]
    fn cyclotomic_square_valid_after_easy_part() {
        // Push a random element through the easy part, then check the
        // specialized squaring against the generic one.
        let mut rng = StdRng::seed_from_u64(59);
        let f = Fp12::random(&mut rng);
        let inv = f.invert().expect("nonzero");
        let t0 = f.conjugate().mul(&inv);
        let t1 = frobenius_p2(&t0).mul(&t0);
        assert_eq!(t1.cyclotomic_square(), t1.square());
        let deeper = t1.cyclotomic_square().cyclotomic_square();
        assert_eq!(deeper, t1.square().square());
    }

    #[test]
    fn naf_recodes_hard_exponent() {
        // Reconstruct the exponent from its NAF digits.
        let naf = hard_exponent_naf();
        let mut acc = BigUint::zero();
        let mut pow = BigUint::one();
        let mut neg = BigUint::zero();
        for &d in naf {
            match d {
                1 => acc = acc.add(&pow),
                -1 => neg = neg.add(&pow),
                _ => {}
            }
            pow = pow.shl(1);
        }
        assert_eq!(acc.sub(&neg), BigUint::from_limbs(hard_exponent().to_vec()));
        // NAF property: no two adjacent nonzero digits.
        for w in naf.windows(2) {
            assert!(w[0] == 0 || w[1] == 0, "adjacent nonzero NAF digits");
        }
    }
}
