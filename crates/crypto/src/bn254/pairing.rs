//! Reduced Tate pairing `e: G1 × G2 → GT ⊂ Fp12`.
//!
//! `e(P, Q) = f_{r,P}(ψ(Q))^((p^12-1)/r)` where ψ is the untwist
//! `(x', y') ↦ (x'·w², y'·w³)` from the D-twist into E(Fp12). The Miller
//! loop walks the bits of the 254-bit group order r with lines through
//! multiples of P (coordinates in Fp — cheap) evaluated at ψ(Q), whose
//! sparse coordinates occupy two Fp2 slots of Fp12. Vertical lines evaluate
//! into the proper subfield Fp6 and are erased by the final exponentiation
//! (denominator elimination), so they are skipped. The final exponentiation
//! splits as `(p^6-1) · (p^6+1)/r`; the first factor is the cheap
//! `conj(f)·f^{-1}`, the second a plain square-and-multiply.
//!
//! This is deliberately the simplest correct pairing (no Frobenius-twisted
//! ate steps); bilinearity and non-degeneracy are property-tested.

use std::sync::OnceLock;

use super::curve::Affine;
use super::fp::{FieldParams, Fp, FpParams, FrParams};
use super::fp12::Fp12;
use super::fp2::Fp2;
use super::g1::{G1, G1Affine};
use super::g2::{G2, G2Affine};
use crate::bigint::BigUint;

/// Little-endian limbs of the hard exponent `(p^6 + 1)/r`.
fn hard_exponent() -> &'static Vec<u64> {
    static E: OnceLock<Vec<u64>> = OnceLock::new();
    E.get_or_init(|| {
        let p = BigUint::from_limbs(FpParams::MODULUS.to_vec());
        let r = BigUint::from_limbs(FrParams::MODULUS.to_vec());
        let p6 = p.mul(&p).mul(&p).mul(&p).mul(&p).mul(&p);
        let (q, rem) = p6.add(&BigUint::one()).divrem(&r);
        assert!(rem.is_zero(), "r must divide p^6 + 1");
        q.limbs().to_vec()
    })
}

/// A running Miller-loop point in affine Fp coordinates (`None` = infinity).
type AffPt = Option<(Fp, Fp)>;

/// Evaluate the line through `t` with slope `lambda` at ψ(Q) and fold it
/// into `f`: the line is `(λ·x_T - y_T) - λ·x_ψ(Q) + y_ψ(Q)` with the three
/// terms landing in the sparse Fp12 slots (c0.c0, c0.c1, c1.c1).
fn eval_line(f: &Fp12, lambda: &Fp, t: &(Fp, Fp), xq: &Fp2, yq: &Fp2) -> Fp12 {
    let a = Fp2::from_fp(lambda.mul(&t.0).sub(&t.1));
    let b = xq.mul_fp(&lambda.neg());
    f.mul_by_line(&a, &b, yq)
}

/// Tangent step: fold the tangent line at `t` into `f` and double `t`.
fn double_step(f: &Fp12, t: &mut AffPt, xq: &Fp2, yq: &Fp2) -> Fp12 {
    let Some(pt) = *t else { return *f };
    if pt.1.is_zero() {
        // Vertical tangent: contribution lies in a subfield (eliminated).
        *t = None;
        return *f;
    }
    // λ = 3x² / 2y
    let three_x2 = pt.0.square().mul(&Fp::from_u64(3));
    let lambda = three_x2.mul(&pt.1.double().invert().expect("y nonzero"));
    let out = eval_line(f, &lambda, &pt, xq, yq);
    let x3 = lambda.square().sub(&pt.0.double());
    let y3 = lambda.mul(&pt.0.sub(&x3)).sub(&pt.1);
    *t = Some((x3, y3));
    out
}

/// Addition step: fold the line through `t` and `p` into `f` and set
/// `t := t + p`.
fn add_step(f: &Fp12, t: &mut AffPt, p: &(Fp, Fp), xq: &Fp2, yq: &Fp2) -> Fp12 {
    let Some(pt) = *t else {
        *t = Some(*p);
        return *f;
    };
    if pt.0 == p.0 {
        if pt.1 == p.1 {
            return double_step(f, t, xq, yq);
        }
        // t == -p: vertical line (eliminated); t + p = O.
        *t = None;
        return *f;
    }
    let lambda = p
        .1
        .sub(&pt.1)
        .mul(&p.0.sub(&pt.0).invert().expect("x1 != x2"));
    let out = eval_line(f, &lambda, &pt, xq, yq);
    let x3 = lambda.square().sub(&pt.0).sub(&p.0);
    let y3 = lambda.mul(&pt.0.sub(&x3)).sub(&pt.1);
    *t = Some((x3, y3));
    out
}

/// The Miller function `f_{r,P}(ψ(Q))` (unreduced pairing value).
pub fn miller_loop(p: &G1Affine, q: &G2Affine) -> Fp12 {
    let (Affine::Coords(px, py), Affine::Coords(qx, qy)) = (p, q) else {
        return Fp12::one();
    };
    let p_aff = (*px, *py);
    // ψ(Q) sparse coordinates: x lives in slot c0.c1 (x'·v), y in c1.c1 (y'·v·w).
    let xq = *qx;
    let yq = *qy;

    let r_bits = FrParams::MODULUS;
    let nbits = 254; // r is a 254-bit prime
    debug_assert!(r_bits[3] >> 53 == 1, "expected 254-bit group order");

    let mut f = Fp12::one();
    let mut t: AffPt = Some(p_aff);
    for i in (0..nbits - 1).rev() {
        f = f.square();
        f = double_step(&f, &mut t, &xq, &yq);
        if (r_bits[i / 64] >> (i % 64)) & 1 == 1 {
            f = add_step(&f, &mut t, &p_aff, &xq, &yq);
        }
    }
    debug_assert!(t.is_none(), "Miller loop must end at infinity (t = rP)");
    f
}

/// Final exponentiation `f ↦ f^((p^12-1)/r)`.
pub fn final_exponentiation(f: &Fp12) -> Fp12 {
    // Easy part: f^(p^6 - 1) = conj(f) * f^{-1} (x^(p^6) == conj(x), tested).
    let inv = f.invert().expect("Miller value is nonzero");
    let easy = f.conjugate().mul(&inv);
    // Hard part: ^(p^6+1)/r.
    easy.pow(hard_exponent())
}

/// The reduced Tate pairing on affine inputs.
pub fn pairing_affine(p: &G1Affine, q: &G2Affine) -> Fp12 {
    final_exponentiation(&miller_loop(p, q))
}

/// The reduced Tate pairing `e(P, Q)`.
pub fn pairing(p: &G1, q: &G2) -> Fp12 {
    pairing_affine(&p.to_affine(), &q.to_affine())
}

#[cfg(test)]
mod tests {
    use super::super::fp::Fr;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pairing_non_degenerate() {
        let e = pairing(&G1::generator(), &G2::generator());
        assert!(!e.is_one(), "e(G1, G2) must not be 1");
        assert!(!e.is_zero());
    }

    #[test]
    fn pairing_has_order_r() {
        let e = pairing(&G1::generator(), &G2::generator());
        assert!(e.pow(&FrParams::MODULUS).is_one());
    }

    #[test]
    fn pairing_of_infinity_is_one() {
        assert!(pairing(&G1::infinity(), &G2::generator()).is_one());
        assert!(pairing(&G1::generator(), &G2::infinity()).is_one());
    }

    #[test]
    fn bilinear_in_g1() {
        let mut rng = StdRng::seed_from_u64(37);
        let a = Fr::random(&mut rng);
        let g1 = G1::generator();
        let g2 = G2::generator();
        let lhs = pairing(&g1.mul_fr(&a), &g2);
        let rhs = pairing(&g1, &g2).pow(&a.to_canonical());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_in_g2() {
        let mut rng = StdRng::seed_from_u64(41);
        let b = Fr::random(&mut rng);
        let g1 = G1::generator();
        let g2 = G2::generator();
        let lhs = pairing(&g1, &g2.mul_fr(&b));
        let rhs = pairing(&g1, &g2).pow(&b.to_canonical());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_both_sides() {
        let mut rng = StdRng::seed_from_u64(43);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let g1 = G1::generator();
        let g2 = G2::generator();
        let lhs = pairing(&g1.mul_fr(&a), &g2.mul_fr(&b));
        let rhs = pairing(&g1.mul_fr(&b), &g2.mul_fr(&a));
        assert_eq!(lhs, rhs);
        let direct = pairing(&g1, &g2).pow(&a.to_canonical()).pow(&b.to_canonical());
        assert_eq!(lhs, direct);
    }

    #[test]
    fn additive_in_g1() {
        // e(P1 + P2, Q) = e(P1, Q) * e(P2, Q)
        let g1 = G1::generator();
        let g2 = G2::generator();
        let p1 = g1.mul_scalar(&[5]);
        let p2 = g1.mul_scalar(&[11]);
        let lhs = pairing(&p1.add(&p2), &g2);
        let rhs = pairing(&p1, &g2).mul(&pairing(&p2, &g2));
        assert_eq!(lhs, rhs);
    }
}
