//! Pluggable aggregate-signature abstraction consumed by the rest of the
//! workspace.
//!
//! Three schemes, one API:
//!
//! * [`SchemeKind::Bas`] — BLS over BN254, the paper's scheme of choice.
//! * [`SchemeKind::CondensedRsa`] — the Table 3 baseline.
//! * [`SchemeKind::Mock`] — keyed SHA-256 with XOR aggregation. **Not a
//!   cryptographic signature** (anyone holding the key can forge); it exists
//!   so structural experiments over millions of records do not pay
//!   elliptic-curve costs. Never used for reported crypto timings, and its
//!   wire length is pinned to the paper's 20-byte (160-bit) signatures so
//!   index layouts match Section 3.2's arithmetic.
//!
//! The signing side is [`Keypair`]; the query server and clients hold
//! [`PublicParams`], which can aggregate, subtract, and verify but not sign.
//!
//! For the BAS scheme, [`PublicParams`] carries the public key's cached
//! pairing preparation (`G2Prepared` line coefficients, shared via `Arc`):
//! cloning the params — e.g. handing them to the query server, a client
//! verifier, and a bench harness — shares one preparation, and every
//! `verify`/`verify_aggregate` call is a single multi-Miller-loop plus one
//! final exponentiation against the prepared key and generator.

use authdb_wire::{put_bytes, Reader, WireDecode, WireEncode, WireError};

use crate::bigint::BigUint;
use crate::bls::{BlsPrivateKey, BlsPublicKey, BlsSignature};
use crate::bn254::g1::G1_COMPRESSED_LEN;
use crate::bn254::G1;
use crate::rsa::{CondensedRsaSignature, RsaPrivateKey, RsaPublicKey, RsaSignature};
use crate::sha256::Sha256;

/// Which aggregate signature scheme to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Bilinear Aggregate Signature (BLS over BN254).
    Bas,
    /// Condensed RSA (multiplicative aggregation, single signer).
    CondensedRsa,
    /// Fast non-cryptographic stand-in for structural experiments.
    Mock,
}

/// A signature (individual or aggregate) under any scheme.
#[derive(Clone, Debug, PartialEq)]
pub enum Signature {
    /// A G1 point.
    Bas(BlsSignature),
    /// An integer modulo the RSA modulus.
    CondensedRsa(BigUint),
    /// 32-byte keyed-hash XOR accumulator.
    Mock([u8; 32]),
}

impl Signature {
    /// Scheme this signature belongs to.
    pub fn kind(&self) -> SchemeKind {
        match self {
            Signature::Bas(_) => SchemeKind::Bas,
            Signature::CondensedRsa(_) => SchemeKind::CondensedRsa,
            Signature::Mock(_) => SchemeKind::Mock,
        }
    }

    /// Serialized form (compressed G1 / modulus-length integer / raw bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Signature::Bas(s) => s.0.to_compressed().to_vec(),
            Signature::CondensedRsa(n) => n.to_bytes_be(),
            Signature::Mock(b) => b.to_vec(),
        }
    }

    /// Fixed-width image of the signature for index leaf entries: padded
    /// with zeros or truncated to `len` bytes. This is a *storage layout*
    /// projection (the paper's `⟨key, sn, rid⟩` entries are fixed width);
    /// authoritative signatures always travel in full through update
    /// messages and query answers.
    pub fn to_bytes_padded(&self, len: usize) -> Vec<u8> {
        let mut bytes = self.to_bytes();
        bytes.resize(len, 0);
        bytes
    }
}

/// Signing-side key material. Cloning shares no mutable state; a sharded
/// deployment clones one DA keypair into every shard's aggregator.
#[derive(Clone)]
pub struct Keypair {
    inner: KeypairInner,
}

#[derive(Clone)]
enum KeypairInner {
    Bas(BlsPrivateKey),
    CondensedRsa(Box<RsaPrivateKey>),
    Mock([u8; 32]),
}

/// Verification-side parameters (public key + scheme); cheap to clone and
/// share with the query server and clients. For BAS, clones share the
/// key's precomputed Miller-loop lines, so repeated query verification
/// never re-prepares the key.
#[derive(Clone)]
pub struct PublicParams {
    inner: PublicInner,
}

#[derive(Clone)]
enum PublicInner {
    Bas(BlsPublicKey),
    CondensedRsa(RsaPublicKey),
    /// The mock "public key" is the shared secret — acceptable only because
    /// Mock is a performance stand-in, not a security mechanism.
    Mock([u8; 32]),
}

impl Keypair {
    /// Generate key material for `kind`. RSA uses a 1024-bit modulus to
    /// match the paper's security equivalence with 160-bit ECC.
    pub fn generate(kind: SchemeKind, rng: &mut impl rand::Rng) -> Self {
        let inner = match kind {
            SchemeKind::Bas => KeypairInner::Bas(BlsPrivateKey::generate(rng)),
            SchemeKind::CondensedRsa => {
                KeypairInner::CondensedRsa(Box::new(RsaPrivateKey::generate(1024, rng)))
            }
            SchemeKind::Mock => {
                let mut key = [0u8; 32];
                rng.fill(&mut key);
                KeypairInner::Mock(key)
            }
        };
        Keypair { inner }
    }

    /// Like [`Keypair::generate`] but with a configurable RSA modulus size
    /// (used by tests that cannot afford 1024-bit keygen).
    pub fn generate_rsa_with_bits(bits: usize, rng: &mut impl rand::Rng) -> Self {
        Keypair {
            inner: KeypairInner::CondensedRsa(Box::new(RsaPrivateKey::generate(bits, rng))),
        }
    }

    /// The scheme of this keypair.
    pub fn kind(&self) -> SchemeKind {
        match &self.inner {
            KeypairInner::Bas(_) => SchemeKind::Bas,
            KeypairInner::CondensedRsa(_) => SchemeKind::CondensedRsa,
            KeypairInner::Mock(_) => SchemeKind::Mock,
        }
    }

    /// Sign a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        match &self.inner {
            KeypairInner::Bas(k) => Signature::Bas(k.sign(msg)),
            KeypairInner::CondensedRsa(k) => Signature::CondensedRsa(k.sign(msg).0),
            KeypairInner::Mock(key) => Signature::Mock(mock_sign(key, msg)),
        }
    }

    /// Verification-side parameters for distribution.
    pub fn public_params(&self) -> PublicParams {
        let inner = match &self.inner {
            KeypairInner::Bas(k) => PublicInner::Bas(k.public_key().clone()),
            KeypairInner::CondensedRsa(k) => PublicInner::CondensedRsa(k.public_key().clone()),
            KeypairInner::Mock(key) => PublicInner::Mock(*key),
        };
        PublicParams { inner }
    }
}

impl PublicParams {
    /// The scheme of these parameters.
    pub fn kind(&self) -> SchemeKind {
        match &self.inner {
            PublicInner::Bas(_) => SchemeKind::Bas,
            PublicInner::CondensedRsa(_) => SchemeKind::CondensedRsa,
            PublicInner::Mock(_) => SchemeKind::Mock,
        }
    }

    /// Bytes one signature occupies on the wire. BAS signatures are 33 bytes
    /// compressed (the paper's 160-bit curves would give 21); Condensed RSA
    /// 128; Mock pins the paper's 20-byte accounting.
    pub fn wire_len(&self) -> usize {
        match &self.inner {
            PublicInner::Bas(_) => 33,
            PublicInner::CondensedRsa(pk) => pk.modulus_len(),
            PublicInner::Mock(_) => 20,
        }
    }

    /// The aggregate identity element.
    pub fn identity(&self) -> Signature {
        match &self.inner {
            PublicInner::Bas(_) => Signature::Bas(BlsSignature::identity()),
            PublicInner::CondensedRsa(_) => Signature::CondensedRsa(BigUint::one()),
            PublicInner::Mock(_) => Signature::Mock([0u8; 32]),
        }
    }

    /// Fold `sig` into `acc` (order-insensitive).
    ///
    /// # Panics
    /// Panics if the signatures belong to different schemes.
    pub fn aggregate(&self, acc: &Signature, sig: &Signature) -> Signature {
        match (&self.inner, acc, sig) {
            (PublicInner::Bas(_), Signature::Bas(a), Signature::Bas(s)) => {
                Signature::Bas(a.aggregate(s))
            }
            (
                PublicInner::CondensedRsa(pk),
                Signature::CondensedRsa(a),
                Signature::CondensedRsa(s),
            ) => Signature::CondensedRsa(
                crate::rsa::condense_push(
                    pk,
                    &CondensedRsaSignature(a.clone()),
                    &RsaSignature(s.clone()),
                )
                .0,
            ),
            (PublicInner::Mock(_), Signature::Mock(a), Signature::Mock(s)) => {
                Signature::Mock(xor32(a, s))
            }
            _ => panic!("signature scheme mismatch in aggregate"),
        }
    }

    /// Aggregate a whole batch.
    pub fn aggregate_all<'a>(&self, sigs: impl IntoIterator<Item = &'a Signature>) -> Signature {
        sigs.into_iter()
            .fold(self.identity(), |acc, s| self.aggregate(&acc, s))
    }

    /// Remove a previously aggregated component (Section 4.3's eager cache
    /// refresh "adds the inverse of the old signature").
    ///
    /// # Panics
    /// Panics on scheme mismatch or (for Condensed RSA) a component that is
    /// not invertible modulo `n` (probability ~ 1/sqrt(n)).
    pub fn subtract(&self, acc: &Signature, sig: &Signature) -> Signature {
        match (&self.inner, acc, sig) {
            (PublicInner::Bas(_), Signature::Bas(a), Signature::Bas(s)) => {
                Signature::Bas(a.subtract(s))
            }
            (
                PublicInner::CondensedRsa(pk),
                Signature::CondensedRsa(a),
                Signature::CondensedRsa(s),
            ) => {
                let n = modulus_of(pk);
                let inv = s.modinv(&n).expect("signature invertible mod n");
                Signature::CondensedRsa(a.mul_mod(&inv, &n))
            }
            (PublicInner::Mock(_), Signature::Mock(a), Signature::Mock(s)) => {
                Signature::Mock(xor32(a, s))
            }
            _ => panic!("signature scheme mismatch in subtract"),
        }
    }

    /// Verify an individual signature.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        match (&self.inner, sig) {
            (PublicInner::Bas(pk), Signature::Bas(s)) => pk.verify(msg, s),
            (PublicInner::CondensedRsa(pk), Signature::CondensedRsa(s)) => {
                pk.verify(msg, &RsaSignature(s.clone()))
            }
            (PublicInner::Mock(key), Signature::Mock(s)) => mock_sign(key, msg) == *s,
            _ => false,
        }
    }

    /// Verify a batch of `(message set, aggregate)` claims at once.
    ///
    /// Under BAS the whole batch folds into one random-linear-combination
    /// multi-pairing (see [`crate::bls::BlsPublicKey::verify_aggregate_batch`];
    /// coefficient randomness comes from `rng`), so a batch of any size
    /// pays a single Miller loop and final exponentiation. The other
    /// schemes fall back to per-claim verification. A `false` result does
    /// not localize the failure — re-check claims individually for that.
    pub fn verify_aggregate_batch(
        &self,
        claims: &[(&[Vec<u8>], &Signature)],
        rng: &mut impl rand::Rng,
    ) -> bool {
        match &self.inner {
            PublicInner::Bas(pk) => {
                let mut bas: Vec<(&[Vec<u8>], &BlsSignature)> = Vec::with_capacity(claims.len());
                for (msgs, sig) in claims {
                    let Signature::Bas(s) = sig else {
                        return false;
                    };
                    bas.push((msgs, s));
                }
                pk.verify_aggregate_batch(&bas, rng)
            }
            _ => claims.iter().all(|(msgs, agg)| {
                let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
                self.verify_aggregate(&refs, agg)
            }),
        }
    }

    /// Verify an aggregate signature over a batch of messages.
    pub fn verify_aggregate(&self, msgs: &[&[u8]], agg: &Signature) -> bool {
        match (&self.inner, agg) {
            (PublicInner::Bas(pk), Signature::Bas(a)) => pk.verify_aggregate(msgs, a),
            (PublicInner::CondensedRsa(pk), Signature::CondensedRsa(a)) => {
                pk.verify_condensed(msgs, &CondensedRsaSignature(a.clone()))
            }
            (PublicInner::Mock(key), Signature::Mock(a)) => {
                let mut acc = [0u8; 32];
                for m in msgs {
                    acc = xor32(&acc, &mock_sign(key, m));
                }
                acc == *a
            }
            _ => false,
        }
    }
}

// -- wire codec -------------------------------------------------------------

/// Wire scheme tags (one byte, part of the canonical encoding).
const WIRE_TAG_BAS: u8 = 0;
const WIRE_TAG_RSA: u8 = 1;
const WIRE_TAG_MOCK: u8 = 2;

/// Canonical encoding: scheme tag, then the scheme's fixed form.
///
/// * BAS — the 33-byte canonical compressed G1 point;
/// * Condensed RSA — length-prefixed minimal big-endian magnitude (no
///   leading zero byte; empty = zero);
/// * Mock — the raw 32-byte accumulator.
impl WireEncode for Signature {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Signature::Bas(s) => {
                out.push(WIRE_TAG_BAS);
                out.extend_from_slice(&s.0.to_compressed());
            }
            Signature::CondensedRsa(n) => {
                out.push(WIRE_TAG_RSA);
                put_bytes(out, &n.to_bytes_be());
            }
            Signature::Mock(b) => {
                out.push(WIRE_TAG_MOCK);
                out.extend_from_slice(b);
            }
        }
    }
}

impl WireDecode for Signature {
    // tag + empty RSA magnitude is the shortest legal form.
    const MIN_WIRE_LEN: usize = 5;

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            WIRE_TAG_BAS => {
                let bytes: [u8; G1_COMPRESSED_LEN] = r.array()?;
                let point = G1::from_compressed_canonical(&bytes).ok_or(WireError::InvalidPoint)?;
                Ok(Signature::Bas(BlsSignature(point)))
            }
            WIRE_TAG_RSA => {
                let bytes = r.bytes("rsa signature magnitude")?;
                if bytes.first() == Some(&0) {
                    return Err(WireError::NonCanonical {
                        what: "rsa signature magnitude",
                    });
                }
                Ok(Signature::CondensedRsa(BigUint::from_bytes_be(&bytes)))
            }
            WIRE_TAG_MOCK => Ok(Signature::Mock(r.array()?)),
            tag => Err(WireError::BadTag {
                what: "signature scheme",
                tag,
            }),
        }
    }
}

fn modulus_of(pk: &RsaPublicKey) -> BigUint {
    // Recover n from a dummy: sign-free path — RsaPublicKey exposes only
    // verification; we reconstruct n by serializing a max-length value.
    // (Cheaper: expose it. We add an accessor below via Deref-free helper.)
    pk.modulus().clone()
}

fn mock_sign(key: &[u8; 32], msg: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(key);
    h.update(msg);
    h.finalize()
}

fn xor32(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..32 {
        out[i] = a[i] ^ b[i];
    }
    out
}

/// Convenience: a BAS aggregate of G1 `point` (used by benches that build
/// signatures directly).
pub fn bas_signature(point: G1) -> Signature {
    Signature::Bas(BlsSignature(point))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_schemes() -> Vec<Keypair> {
        let mut rng = StdRng::seed_from_u64(303);
        vec![
            Keypair::generate(SchemeKind::Bas, &mut rng),
            Keypair::generate_rsa_with_bits(512, &mut rng),
            Keypair::generate(SchemeKind::Mock, &mut rng),
        ]
    }

    #[test]
    fn sign_verify_all_schemes() {
        for kp in all_schemes() {
            let pp = kp.public_params();
            let sig = kp.sign(b"record 42");
            assert!(pp.verify(b"record 42", &sig), "{:?}", kp.kind());
            assert!(!pp.verify(b"record 43", &sig), "{:?}", kp.kind());
        }
    }

    #[test]
    fn aggregate_verify_all_schemes() {
        for kp in all_schemes() {
            let pp = kp.public_params();
            let msgs: Vec<Vec<u8>> = (0..4u32).map(|i| format!("m{i}").into_bytes()).collect();
            let sigs: Vec<Signature> = msgs.iter().map(|m| kp.sign(m)).collect();
            let agg = pp.aggregate_all(&sigs);
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            assert!(pp.verify_aggregate(&refs, &agg), "{:?}", kp.kind());
            let bad: Vec<&[u8]> = refs[..3].to_vec();
            assert!(!pp.verify_aggregate(&bad, &agg), "{:?}", kp.kind());
        }
    }

    #[test]
    fn subtract_then_verify_all_schemes() {
        for kp in all_schemes() {
            let pp = kp.public_params();
            let s1 = kp.sign(b"keep");
            let s2 = kp.sign(b"drop");
            let agg = pp.aggregate(&pp.aggregate(&pp.identity(), &s1), &s2);
            let reduced = pp.subtract(&agg, &s2);
            assert!(pp.verify_aggregate(&[b"keep"], &reduced), "{:?}", kp.kind());
        }
    }

    #[test]
    fn batch_aggregate_verify_all_schemes() {
        let mut rng = StdRng::seed_from_u64(304);
        for kp in all_schemes() {
            let pp = kp.public_params();
            let mut data: Vec<(Vec<Vec<u8>>, Signature)> = Vec::new();
            for i in 0..4u32 {
                let msgs: Vec<Vec<u8>> = (0..3u32)
                    .map(|j| format!("b{i}.{j}").into_bytes())
                    .collect();
                let sigs: Vec<Signature> = msgs.iter().map(|m| kp.sign(m)).collect();
                data.push((msgs, pp.aggregate_all(&sigs)));
            }
            let claims: Vec<(&[Vec<u8>], &Signature)> =
                data.iter().map(|(m, s)| (m.as_slice(), s)).collect();
            assert!(
                pp.verify_aggregate_batch(&claims, &mut rng),
                "{:?}",
                kp.kind()
            );
            // Corrupt one message of one claim: the whole batch must fail.
            let mut bad = data.clone();
            bad[2].0[1] = b"corrupted".to_vec();
            let claims: Vec<(&[Vec<u8>], &Signature)> =
                bad.iter().map(|(m, s)| (m.as_slice(), s)).collect();
            assert!(
                !pp.verify_aggregate_batch(&claims, &mut rng),
                "{:?}",
                kp.kind()
            );
        }
    }

    #[test]
    fn wire_lengths() {
        for kp in all_schemes() {
            let pp = kp.public_params();
            match kp.kind() {
                SchemeKind::Bas => assert_eq!(pp.wire_len(), 33),
                SchemeKind::CondensedRsa => assert_eq!(pp.wire_len(), 64), // 512-bit test key
                SchemeKind::Mock => assert_eq!(pp.wire_len(), 20),
            }
        }
    }

    #[test]
    fn signature_bytes_nonempty() {
        for kp in all_schemes() {
            let sig = kp.sign(b"x");
            assert!(!sig.to_bytes().is_empty());
        }
    }

    #[test]
    fn signature_wire_round_trip_all_schemes() {
        for kp in all_schemes() {
            let sig = kp.sign(b"wire me");
            let enc = sig.encode();
            let dec = Signature::decode(&enc)
                .unwrap_or_else(|e| panic!("{:?} signature failed to decode: {e}", kp.kind()));
            assert_eq!(dec, sig, "{:?}", kp.kind());
            // Canonicality: re-encoding a decoded value is bit-identical.
            assert_eq!(dec.encode(), enc, "{:?}", kp.kind());
            // The aggregate identity round-trips too (infinity point /
            // unit / zero accumulator).
            let id = kp.public_params().identity();
            let enc = id.encode();
            assert_eq!(Signature::decode(&enc).unwrap(), id);
        }
    }

    #[test]
    fn non_canonical_signature_encodings_rejected() {
        let mut rng = StdRng::seed_from_u64(305);
        let kp = Keypair::generate(SchemeKind::Bas, &mut rng);
        let enc = kp.sign(b"m").encode();

        // Unknown scheme tag.
        let mut bad = enc.clone();
        bad[0] = 9;
        assert!(matches!(
            Signature::decode(&bad),
            Err(WireError::BadTag { .. })
        ));

        // Infinity tag with a nonzero x tail: two encodings of one point.
        let mut bad = enc.clone();
        bad[1] = 0x00;
        assert_eq!(Signature::decode(&bad), Err(WireError::InvalidPoint));

        // x-coordinate >= p (all-ones) would be silently reduced by the
        // permissive decoder; the canonical path must reject it.
        let mut bad = enc.clone();
        for b in &mut bad[2..] {
            *b = 0xFF;
        }
        assert_eq!(Signature::decode(&bad), Err(WireError::InvalidPoint));

        // Truncation is an error, not a panic.
        assert_eq!(
            Signature::decode(&enc[..enc.len() - 1]),
            Err(WireError::Truncated)
        );

        // RSA magnitude with a leading zero byte is non-canonical.
        let rsa = Keypair::generate_rsa_with_bits(512, &mut rng).sign(b"m");
        let enc = rsa.encode();
        let mut padded = vec![enc[0]];
        let len = u32::from_be_bytes(enc[1..5].try_into().unwrap()) + 1;
        padded.extend_from_slice(&len.to_be_bytes());
        padded.push(0);
        padded.extend_from_slice(&enc[5..]);
        assert!(matches!(
            Signature::decode(&padded),
            Err(WireError::NonCanonical { .. })
        ));
    }
}
