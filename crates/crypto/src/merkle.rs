//! Merkle hash tree (Section 2.1, Figure 1).
//!
//! A binary MHT over message digests: leaves are `h(m_i)`, internal nodes
//! `h(left | right)`, and the root is what the owner signs. Verification of
//! any subset uses a **verification object (VO)** containing the sibling
//! digests along the path. This standalone primitive backs unit tests and
//! the per-record attribute trees of \[19\]; the EMB− tree in `authdb-index`
//! embeds the same digest algebra into B+-tree nodes.

use crate::sha256::{sha256, sha256_pair, Digest};

/// A Merkle hash tree with all levels materialized.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` = leaf digests; last level has a single root digest.
    levels: Vec<Vec<Digest>>,
}

/// One step of an audit path: the sibling digest and which side it is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathNode {
    /// Sibling hashes on the left: parent = h(sibling | current).
    Left(Digest),
    /// Sibling hashes on the right: parent = h(current | sibling).
    Right(Digest),
}

impl MerkleTree {
    /// Build a tree over raw messages (leaves are their SHA-256 digests).
    ///
    /// # Panics
    /// Panics if `messages` is empty.
    pub fn from_messages<M: AsRef<[u8]>>(messages: &[M]) -> Self {
        Self::from_leaves(messages.iter().map(|m| sha256(m.as_ref())).collect())
    }

    /// Build a tree over precomputed leaf digests. An odd node at the end of
    /// a level is promoted unchanged (no duplication), matching the
    /// directed-acyclic-graph generalization in \[20\].
    ///
    /// # Panics
    /// Panics if `leaves` is empty.
    pub fn from_leaves(leaves: Vec<Digest>) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut levels = vec![leaves];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(sha256_pair(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest (what the owner signs).
    pub fn root(&self) -> Digest {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Leaf digest at `index`.
    pub fn leaf(&self, index: usize) -> Digest {
        self.levels[0][index]
    }

    /// The audit path (VO) for leaf `index`: sibling digests bottom-up.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn path(&self, index: usize) -> Vec<PathNode> {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            if idx.is_multiple_of(2) {
                if idx + 1 < level.len() {
                    path.push(PathNode::Right(level[idx + 1]));
                }
                // Odd trailing node: promoted, no sibling step.
            } else {
                path.push(PathNode::Left(level[idx - 1]));
            }
            idx /= 2;
        }
        path
    }

    /// Recompute a root from a leaf digest and an audit path.
    pub fn root_from_path(leaf: Digest, path: &[PathNode]) -> Digest {
        let mut acc = leaf;
        for node in path {
            acc = match node {
                PathNode::Left(sib) => sha256_pair(sib, &acc),
                PathNode::Right(sib) => sha256_pair(&acc, sib),
            };
        }
        acc
    }

    /// Verify that `message` is the leaf whose path reproduces `root`.
    pub fn verify(message: &[u8], path: &[PathNode], root: &Digest) -> bool {
        Self::root_from_path(sha256(message), path) == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_leaf_tree_matches_figure_1() {
        // Figure 1: root = h(h(h(m1)|h(m2)) | h(h(m3)|h(m4)))
        let msgs = [b"m1", b"m2", b"m3", b"m4"];
        let t = MerkleTree::from_messages(&msgs);
        let n12 = sha256_pair(&sha256(b"m1"), &sha256(b"m2"));
        let n34 = sha256_pair(&sha256(b"m3"), &sha256(b"m4"));
        assert_eq!(t.root(), sha256_pair(&n12, &n34));
    }

    #[test]
    fn every_leaf_path_verifies() {
        for n in 1..=17usize {
            let msgs: Vec<Vec<u8>> = (0..n).map(|i| format!("msg {i}").into_bytes()).collect();
            let t = MerkleTree::from_messages(&msgs);
            for (i, m) in msgs.iter().enumerate() {
                let path = t.path(i);
                assert!(
                    MerkleTree::verify(m, &path, &t.root()),
                    "leaf {i} of {n} failed"
                );
            }
        }
    }

    #[test]
    fn tampered_message_fails() {
        let msgs = [b"a", b"b", b"c"];
        let t = MerkleTree::from_messages(&msgs);
        let path = t.path(1);
        assert!(!MerkleTree::verify(b"B", &path, &t.root()));
    }

    #[test]
    fn tampered_path_fails() {
        let msgs = [b"a", b"b", b"c", b"d"];
        let t = MerkleTree::from_messages(&msgs);
        let mut path = t.path(0);
        if let PathNode::Right(ref mut d) = path[0] {
            d[0] ^= 1;
        }
        assert!(!MerkleTree::verify(b"a", &path, &t.root()));
    }

    #[test]
    fn single_leaf() {
        let t = MerkleTree::from_messages(&[b"only"]);
        assert_eq!(t.root(), sha256(b"only"));
        assert!(t.path(0).is_empty());
        assert!(MerkleTree::verify(b"only", &[], &t.root()));
    }
}
