//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This is the number-theoretic substrate for the RSA / Condensed-RSA signer
//! and for deriving BN254 pairing constants. Limbs are little-endian `u64`s
//! with no trailing zero limbs (canonical form). Division is Knuth's
//! Algorithm D; modular exponentiation uses Montgomery multiplication for odd
//! moduli and falls back to divide-based reduction otherwise.

use std::cmp::Ordering;
use std::fmt;

/// Arbitrary-precision unsigned integer (little-endian `u64` limbs).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Construct from little-endian limbs (normalizing trailing zeros).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Borrow the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Construct from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Big-endian byte representation without leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Big-endian bytes left-padded to exactly `len` bytes.
    ///
    /// # Panics
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parse from a hexadecimal string (no `0x` prefix required; accepts one).
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        let mut idx = 0;
        if chars.len() % 2 == 1 {
            bytes.push(hex_val(chars[0])?);
            idx = 1;
        }
        while idx < chars.len() {
            bytes.push(hex_val(chars[idx])? << 4 | hex_val(chars[idx + 1])?);
            idx += 2;
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Parse from a decimal string.
    pub fn from_dec(s: &str) -> Option<Self> {
        let mut acc = BigUint::zero();
        let ten = BigUint::from_u64(10);
        for ch in s.bytes() {
            if !ch.is_ascii_digit() {
                return None;
            }
            acc = acc.mul(&ten).add(&BigUint::from_u64((ch - b'0') as u64));
        }
        Some(acc)
    }

    /// Lowercase hexadecimal representation (no prefix, "0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Decimal representation.
    pub fn to_dec(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        let billion = BigUint::from_u64(1_000_000_000);
        while !cur.is_zero() {
            let (q, r) = cur.divrem(&billion);
            digits.push(r.as_u64());
            cur = q;
        }
        let mut s = format!("{}", digits.pop().unwrap());
        while let Some(d) = digits.pop() {
            s.push_str(&format!("{d:09}"));
        }
        s
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the low bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&l| l & 1 == 1)
    }

    /// Low 64 bits (0 for zero).
    pub fn as_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (false beyond the top bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Comparison.
    pub fn cmp_to(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(longer.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..longer.limbs.len() {
            let b = shorter.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = longer.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Self::from_limbs(out)
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(
            self.cmp_to(other) != Ordering::Less,
            "BigUint::sub would underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        Self::from_limbs(out)
    }

    /// `self * other` (schoolbook multiplication).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Self::from_limbs(out)
    }

    /// `self << n` bits.
    pub fn shl(&self, n: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Self::from_limbs(out)
    }

    /// `self >> n` bits.
    pub fn shr(&self, n: usize) -> Self {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        Self::from_limbs(out)
    }

    /// Quotient and remainder of `self / divisor` (Knuth Algorithm D).
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_to(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u128;
            for &limb in self.limbs.iter().rev() {
                let cur = (rem << 64) | limb as u128;
                q.push((cur / d as u128) as u64);
                rem = cur % d as u128;
            }
            q.reverse();
            return (Self::from_limbs(q), Self::from_u64(rem as u64));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];
        let v_top = vn[n - 1] as u128;
        let v_next = vn[n - 2] as u128;

        for j in (0..=m).rev() {
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = num / v_top;
            let mut rhat = num % v_top;
            while qhat >= 1u128 << 64 || qhat * v_next > ((rhat << 64) | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply-subtract qhat * v from un[j..j+n+1].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[i + j] as i128 - (p as u64) as i128 + borrow;
                un[i + j] = t as u64;
                borrow = t >> 64;
            }
            let t = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = t as u64;
            if t < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = un[i + j] as u128 + vn[i] as u128 + c;
                    un[i + j] = s as u64;
                    c = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(c as u64);
            }
            q[j] = qhat as u64;
        }
        let rem = Self::from_limbs(un[..n].to_vec()).shr(shift);
        (Self::from_limbs(q), rem)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Self) -> Self {
        self.divrem(m).1
    }

    /// `(self + other) mod m` (inputs assumed < m).
    pub fn add_mod(&self, other: &Self, m: &Self) -> Self {
        let s = self.add(other);
        if s.cmp_to(m) == Ordering::Less {
            s
        } else {
            s.sub(m)
        }
    }

    /// `(self - other) mod m` (inputs assumed < m).
    pub fn sub_mod(&self, other: &Self, m: &Self) -> Self {
        if self.cmp_to(other) == Ordering::Less {
            self.add(m).sub(other)
        } else {
            self.sub(other)
        }
    }

    /// `(self * other) mod m`.
    pub fn mul_mod(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }

    /// `self^exp mod m`. Uses Montgomery exponentiation for odd `m`.
    pub fn modexp(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modexp modulus is zero");
        if m.is_one() {
            return Self::zero();
        }
        if m.is_odd() {
            return Montgomery::new(m).pow(self, exp);
        }
        // Fallback: plain square-and-multiply with divide-based reduction.
        let mut base = self.rem(m);
        let mut result = Self::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mul_mod(&base, m);
            }
            base = base.mul_mod(&base, m);
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0;
        while !a.is_odd() && !b.is_odd() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while !a.is_odd() {
            a = a.shr(1);
        }
        loop {
            while !b.is_odd() {
                b = b.shr(1);
            }
            if a.cmp_to(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Modular inverse of `self` modulo `m`, if it exists.
    pub fn modinv(&self, m: &Self) -> Option<Self> {
        // Extended Euclid with signed coefficients tracked as (sign, magnitude).
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut t0 = (false, Self::zero()); // coefficient of m
        let mut t1 = (false, Self::one()); // coefficient of self
        while !r1.is_zero() {
            let (q, r2) = r0.divrem(&r1);
            let qt1 = q.mul(&t1.1);
            // t2 = t0 - q*t1 (signed arithmetic)
            let t2 = signed_sub(&t0, &(t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        let (neg, mag) = t0;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() {
            m.sub(&mag)
        } else {
            mag
        })
    }

    /// Miller-Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime(&self, rounds: usize, rng: &mut impl rand::Rng) -> bool {
        if self.is_zero() || self.is_one() {
            return false;
        }
        const SMALL_PRIMES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
        for &p in &SMALL_PRIMES {
            let bp = Self::from_u64(p);
            match self.cmp_to(&bp) {
                Ordering::Equal => return true,
                Ordering::Less => return false,
                Ordering::Greater => {
                    if self.rem(&bp).is_zero() {
                        return false;
                    }
                }
            }
        }
        let one = Self::one();
        let n_minus_1 = self.sub(&one);
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while !d.is_odd() {
            d = d.shr(1);
            s += 1;
        }
        let mont = Montgomery::new(self);
        'witness: for _ in 0..rounds {
            let a = Self::random_below(&n_minus_1, rng).add(&one); // in [1, n-1]
            if a.is_one() || a.cmp_to(&n_minus_1) == Ordering::Equal {
                continue;
            }
            let mut x = mont.pow(&a, &d);
            if x.is_one() || x.cmp_to(&n_minus_1) == Ordering::Equal {
                continue;
            }
            for _ in 0..s - 1 {
                x = x.mul_mod(&x, self);
                if x.cmp_to(&n_minus_1) == Ordering::Equal {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Uniform random value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn random_below(bound: &Self, rng: &mut impl rand::Rng) -> Self {
        assert!(!bound.is_zero(), "random_below(0)");
        let bits = bound.bits();
        loop {
            let candidate = Self::random_bits(bits, rng);
            if candidate.cmp_to(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Uniform random value with at most `bits` bits.
    pub fn random_bits(bits: usize, rng: &mut impl rand::Rng) -> Self {
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let extra = limbs * 64 - bits;
        if extra > 0 {
            if let Some(top) = v.last_mut() {
                *top &= u64::MAX >> extra;
            }
        }
        Self::from_limbs(v)
    }

    /// Generate a random probable prime with exactly `bits` bits.
    pub fn gen_prime(bits: usize, rng: &mut impl rand::Rng) -> Self {
        assert!(bits >= 2, "prime must have at least 2 bits");
        loop {
            let mut candidate = Self::random_bits(bits, rng);
            // Force the top bit (exact bit length) and low bit (odd).
            candidate = candidate
                .add(&Self::one().shl(bits - 1))
                .rem(&Self::one().shl(bits));
            if candidate.bits() < bits {
                continue;
            }
            if !candidate.is_odd() {
                candidate = candidate.add(&Self::one());
                if candidate.bits() > bits {
                    continue;
                }
            }
            if candidate.is_probable_prime(24, rng) {
                return candidate;
            }
        }
    }
}

/// `a - b` on (sign, magnitude) pairs; `true` sign means negative.
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        (false, true) => (false, a.1.add(&b.1)),
        (true, false) => (true, a.1.add(&b.1)),
        (false, false) => {
            if a.1.cmp_to(&b.1) == Ordering::Less {
                (true, b.1.sub(&a.1))
            } else {
                (false, a.1.sub(&b.1))
            }
        }
        (true, true) => {
            if b.1.cmp_to(&a.1) == Ordering::Less {
                (true, a.1.sub(&b.1))
            } else {
                (false, b.1.sub(&a.1))
            }
        }
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dec())
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_to(other)
    }
}

/// Montgomery multiplication context for an odd modulus.
pub struct Montgomery {
    n: Vec<u64>,
    n0_inv: u64,  // -n^{-1} mod 2^64
    r2: Vec<u64>, // R^2 mod n, R = 2^(64*k)
    k: usize,
    modulus: BigUint,
}

impl Montgomery {
    /// Create a context for odd modulus `m`.
    ///
    /// # Panics
    /// Panics if `m` is even or zero.
    pub fn new(m: &BigUint) -> Self {
        assert!(m.is_odd(), "Montgomery modulus must be odd");
        let k = m.limbs.len();
        let n0 = m.limbs[0];
        // Newton's iteration: inv = inv * (2 - n0 * inv) doubles correct bits.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        // R^2 mod n where R = 2^(64k).
        let r2 = BigUint::one().shl(128 * k).rem(m);
        let mut r2_limbs = r2.limbs.clone();
        r2_limbs.resize(k, 0);
        Montgomery {
            n: m.limbs.clone(),
            n0_inv,
            r2: r2_limbs,
            k,
            modulus: m.clone(),
        }
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^{-1} mod n`.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.k];
        let mut scratch = vec![0u64; self.k + 2];
        self.mont_mul_into(a, b, &mut out, &mut scratch);
        out
    }

    /// CIOS Montgomery multiplication writing into caller-owned buffers:
    /// `out` receives `a * b * R^{-1} mod n` (`k` limbs) and `scratch`
    /// (`k + 2` limbs) is working space. Hot loops ([`Montgomery::pow`])
    /// reuse both across iterations instead of allocating per product;
    /// `out` must not alias `a` or `b`.
    #[allow(clippy::needless_range_loop)] // limb-loop indices mirror the CIOS paper
    fn mont_mul_into(&self, a: &[u64], b: &[u64], out: &mut [u64], scratch: &mut [u64]) {
        let k = self.k;
        debug_assert_eq!(out.len(), k);
        debug_assert_eq!(scratch.len(), k + 2);
        let t = scratch;
        t.fill(0);
        for i in 0..k {
            // t += a[i] * b
            let mut carry = 0u128;
            for j in 0..k {
                let s = t[j] as u128 + a[i] as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;
            // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u128 + m as u128 * self.n[0] as u128;
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            let s2 = t[k + 1] as u128 + (s >> 64);
            t[k] = s2 as u64;
            t[k + 1] = (s2 >> 64) as u64;
        }
        // Conditional subtraction of n. When the product overflowed into
        // t[k], the k-limb subtraction legitimately borrows: the borrow
        // cancels against the overflow limb (t < 2n < 2·2^(64k)).
        out.copy_from_slice(&t[..k]);
        let overflow = t[k] != 0;
        if overflow || ge(out, &self.n) {
            let borrow = sub_in_place(out, &self.n);
            debug_assert_eq!(borrow != 0, overflow, "CIOS reduction invariant");
        }
    }

    fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let mut a_limbs = a.rem(&self.modulus).limbs.clone();
        a_limbs.resize(self.k, 0);
        self.mont_mul(&a_limbs, &self.r2)
    }

    #[allow(clippy::wrong_self_convention)] // Montgomery-domain conversion, not a constructor
    fn from_mont(&self, a: &[u64]) -> BigUint {
        let one = {
            let mut v = vec![0u64; self.k];
            v[0] = 1;
            v
        };
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    /// `base^exp mod n` (left-to-right square-and-multiply).
    ///
    /// The square/multiply loop ping-pongs between two preallocated limb
    /// buffers and one shared scratch buffer, so a w-bit exponent costs
    /// zero allocations after setup instead of ~1.5w `Vec`s.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let base_m = self.to_mont(base);
        let mut acc = base_m.clone();
        let mut tmp = vec![0u64; self.k];
        let mut scratch = vec![0u64; self.k + 2];
        let nbits = exp.bits();
        for i in (0..nbits - 1).rev() {
            self.mont_mul_into(&acc, &acc, &mut tmp, &mut scratch);
            std::mem::swap(&mut acc, &mut tmp);
            if exp.bit(i) {
                self.mont_mul_into(&acc, &base_m, &mut tmp, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        self.from_mont(&acc)
    }

    /// `(a * b) mod n` via Montgomery round trip.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }
}

/// `a >= b` for equal-length limb slices.
fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Greater => return true,
            Ordering::Less => return false,
            Ordering::Equal => continue,
        }
    }
    true
}

/// `a -= b` over equal-length limb slices; returns the final borrow
/// (nonzero iff `a < b`, in which case `a` wraps modulo `2^(64·len)`).
fn sub_in_place(a: &mut [u64], b: &[u64]) -> u64 {
    let mut borrow = 0u64;
    for (ai, &bi) in a.iter_mut().zip(b.iter()) {
        let (d1, b1) = ai.overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *ai = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    borrow
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn hex_round_trip() {
        let n = BigUint::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        assert_eq!(n.to_hex(), "deadbeefcafebabe0123456789abcdef");
    }

    #[test]
    fn dec_round_trip() {
        let n = BigUint::from_dec("123456789012345678901234567890").unwrap();
        assert_eq!(n.to_dec(), "123456789012345678901234567890");
    }

    #[test]
    fn add_sub_inverse() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let b = BigUint::from_hex("123456789abcdef0").unwrap();
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_known() {
        let a = BigUint::from_u64(u64::MAX);
        let sq = a.mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = BigUint::one()
            .shl(128)
            .sub(&BigUint::one().shl(65))
            .add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn divrem_basic() {
        let a = BigUint::from_dec("123456789012345678901234567890123456789").unwrap();
        let b = BigUint::from_dec("98765432109876543210").unwrap();
        let (q, r) = a.divrem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_to(&b) == Ordering::Less);
    }

    #[test]
    fn divrem_single_limb() {
        let a = BigUint::from_dec("1000000000000000000000").unwrap();
        let (q, r) = a.divrem(&BigUint::from_u64(7));
        assert_eq!(q.mul(&BigUint::from_u64(7)).add(&r), a);
    }

    #[test]
    fn modexp_fermat() {
        // 2^(p-1) mod p == 1 for prime p.
        let p = BigUint::from_dec("1000000007").unwrap();
        let e = p.sub(&BigUint::one());
        assert!(BigUint::from_u64(2).modexp(&e, &p).is_one());
    }

    #[test]
    fn modexp_large_odd_modulus() {
        let m =
            BigUint::from_hex("c90102faa48f18b5eac1f76bb88da5f6e53af8f93d1b44e1a2c0810b2469adb1")
                .unwrap();
        let base = BigUint::from_u64(7);
        let exp = BigUint::from_u64(65537);
        let fast = base.modexp(&exp, &m);
        // Slow reference.
        let mut slow = BigUint::one();
        for _ in 0..65537u32 {
            slow = slow.mul(&base).rem(&m);
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn modexp_even_modulus() {
        let m = BigUint::from_u64(1 << 20);
        let r = BigUint::from_u64(3).modexp(&BigUint::from_u64(100), &m);
        // 3^100 mod 2^20: compute with u128 reference over repeated squares.
        let mut slow: u128 = 1;
        for _ in 0..100 {
            slow = slow * 3 % (1 << 20);
        }
        assert_eq!(r.as_u64() as u128, slow);
    }

    #[test]
    fn modinv_known() {
        let m = BigUint::from_u64(97);
        let a = BigUint::from_u64(13);
        let inv = a.modinv(&m).unwrap();
        assert!(a.mul(&inv).rem(&m).is_one());
    }

    #[test]
    fn modinv_none_when_not_coprime() {
        let m = BigUint::from_u64(100);
        assert!(BigUint::from_u64(10).modinv(&m).is_none());
    }

    #[test]
    fn gcd_known() {
        let a = BigUint::from_u64(48);
        let b = BigUint::from_u64(36);
        assert_eq!(a.gcd(&b), BigUint::from_u64(12));
    }

    #[test]
    fn miller_rabin_accepts_primes() {
        let mut r = rng();
        for p in [2u64, 3, 5, 97, 1_000_000_007, 2_147_483_647] {
            assert!(
                BigUint::from_u64(p).is_probable_prime(16, &mut r),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn miller_rabin_rejects_composites() {
        let mut r = rng();
        for c in [1u64, 4, 100, 561 /* Carmichael */, 1_000_000_006] {
            assert!(
                !BigUint::from_u64(c).is_probable_prime(16, &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn gen_prime_has_requested_bits() {
        let mut r = rng();
        let p = BigUint::gen_prime(96, &mut r);
        assert_eq!(p.bits(), 96);
        assert!(p.is_probable_prime(16, &mut r));
    }

    #[test]
    fn bytes_round_trip() {
        let n = BigUint::from_hex("0102030405060708090a0b0c0d0e0f").unwrap();
        assert_eq!(BigUint::from_bytes_be(&n.to_bytes_be()), n);
        let padded = n.to_bytes_be_padded(20);
        assert_eq!(padded.len(), 20);
        assert_eq!(BigUint::from_bytes_be(&padded), n);
    }

    #[test]
    fn montgomery_reduction_overflow_path() {
        // A modulus just under a limb boundary makes the CIOS intermediate
        // spill into the extra limb, so the conditional subtraction must
        // borrow against the overflow (regression: the borrow used to trip
        // a debug assertion during 1024-bit RSA keygen).
        let n = BigUint::one().shl(256).sub(&BigUint::from_u64(189));
        assert!(n.is_odd());
        let mont = Montgomery::new(&n);
        let a = n.sub(&BigUint::from_u64(1));
        let b = n.sub(&BigUint::from_u64(2));
        assert_eq!(mont.mul(&a, &b), a.mul(&b).rem(&n));
        // And a sweep of near-modulus operands.
        for da in 1u64..20 {
            for db in 1u64..20 {
                let a = n.sub(&BigUint::from_u64(da));
                let b = n.sub(&BigUint::from_u64(db));
                assert_eq!(mont.mul(&a, &b), a.mul(&b).rem(&n));
            }
        }
    }

    #[test]
    fn montgomery_mul_matches_plain() {
        let m = BigUint::from_dec("987654321987654321987654321987654321987").unwrap();
        let m = if m.is_odd() {
            m
        } else {
            m.add(&BigUint::one())
        };
        let mont = Montgomery::new(&m);
        let a = BigUint::from_dec("123456789123456789123456789").unwrap();
        let b = BigUint::from_dec("424242424242424242424242424").unwrap();
        assert_eq!(mont.mul(&a, &b), a.mul(&b).rem(&m));
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_u64(0b1011);
        assert_eq!(a.shl(100).shr(100), a);
        assert_eq!(a.shr(2), BigUint::from_u64(0b10));
    }
}
