//! RSA signatures with Condensed-RSA multiplicative aggregation.
//!
//! Condensed RSA (Mykletun/Narasimha/Tsudik, cited as \[23,24\] in the paper)
//! aggregates many signatures from the *same* signer into one value by
//! multiplying them modulo `n`; the verifier checks
//! `sigma^e == prod H(m_i) (mod n)`. The paper benchmarks 1024-bit Condensed
//! RSA against 160-bit BAS in Table 3; both are first-class schemes here.
//!
//! Hashing uses a full-domain construction: SHA-256 expanded with a counter
//! (MGF1-style) to one byte less than the modulus length, guaranteeing the
//! encoded value is below `n`.

use crate::bigint::{BigUint, Montgomery};
use crate::sha256::Sha256;

/// RSA public key (modulus + public exponent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    modulus_bytes: usize,
}

/// RSA private key with CRT acceleration parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    d_p: BigUint,
    d_q: BigUint,
    q_inv: BigUint,
}

/// An individual RSA signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaSignature(pub BigUint);

/// A condensed (aggregated) RSA signature over a batch of messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CondensedRsaSignature(pub BigUint);

impl RsaPublicKey {
    /// Modulus size in bytes (e.g. 128 for RSA-1024).
    pub fn modulus_len(&self) -> usize {
        self.modulus_bytes
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Full-domain hash of `msg` into `[0, n)`.
    fn fdh(&self, msg: &[u8]) -> BigUint {
        fdh_to_len(msg, self.modulus_bytes - 1).rem(&self.n)
    }

    /// Verify an individual signature.
    pub fn verify(&self, msg: &[u8], sig: &RsaSignature) -> bool {
        if sig.0.cmp_to(&self.n) != std::cmp::Ordering::Less {
            return false;
        }
        sig.0.modexp(&self.e, &self.n) == self.fdh(msg)
    }

    /// Verify a condensed signature over `msgs` (order-insensitive).
    pub fn verify_condensed(&self, msgs: &[&[u8]], agg: &CondensedRsaSignature) -> bool {
        if msgs.is_empty() {
            return agg.0.is_one();
        }
        let mont = Montgomery::new(&self.n);
        let mut expected = BigUint::one();
        for m in msgs {
            expected = mont.mul(&expected, &self.fdh(m));
        }
        agg.0.modexp(&self.e, &self.n) == expected
    }
}

impl RsaPrivateKey {
    /// Generate a fresh key with a modulus of `bits` bits (e.g. 1024).
    ///
    /// # Panics
    /// Panics if `bits < 64`.
    pub fn generate(bits: usize, rng: &mut impl rand::Rng) -> Self {
        assert!(bits >= 64, "RSA modulus must be at least 64 bits");
        let e = BigUint::from_u64(65537);
        loop {
            let p = BigUint::gen_prime(bits / 2, rng);
            let q = BigUint::gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bits() != bits {
                continue;
            }
            let one = BigUint::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            let phi = p1.mul(&q1);
            let Some(d) = e.modinv(&phi) else { continue };
            let d_p = d.rem(&p1);
            let d_q = d.rem(&q1);
            let Some(q_inv) = q.modinv(&p) else { continue };
            return RsaPrivateKey {
                public: RsaPublicKey {
                    modulus_bytes: bits.div_ceil(8),
                    n,
                    e,
                },
                d,
                p,
                q,
                d_p,
                d_q,
                q_inv,
            };
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Sign `msg` (CRT-accelerated `H(m)^d mod n`).
    pub fn sign(&self, msg: &[u8]) -> RsaSignature {
        let h = self.public.fdh(msg);
        // CRT: m1 = h^dP mod p, m2 = h^dQ mod q,
        // sig = m2 + q * ((m1 - m2) * qInv mod p)
        let m1 = h.rem(&self.p).modexp(&self.d_p, &self.p);
        let m2 = h.rem(&self.q).modexp(&self.d_q, &self.q);
        let diff = m1.sub_mod(&m2.rem(&self.p), &self.p);
        let h_crt = diff.mul_mod(&self.q_inv, &self.p);
        let sig = m2.add(&self.q.mul(&h_crt));
        RsaSignature(sig)
    }

    /// Slow reference signing without CRT (used in tests).
    pub fn sign_no_crt(&self, msg: &[u8]) -> RsaSignature {
        let h = self.public.fdh(msg);
        RsaSignature(h.modexp(&self.d, &self.public.n))
    }
}

/// Aggregate individual signatures into a condensed signature
/// (multiplication modulo `n`; associative and commutative).
pub fn condense(pk: &RsaPublicKey, sigs: &[RsaSignature]) -> CondensedRsaSignature {
    let mont = Montgomery::new(&pk.n);
    let mut acc = BigUint::one();
    for s in sigs {
        acc = mont.mul(&acc, &s.0);
    }
    CondensedRsaSignature(acc)
}

/// Fold one more signature into an existing condensed signature.
pub fn condense_push(
    pk: &RsaPublicKey,
    agg: &CondensedRsaSignature,
    sig: &RsaSignature,
) -> CondensedRsaSignature {
    CondensedRsaSignature(agg.0.mul_mod(&sig.0, &pk.n))
}

/// MGF1-style expansion of SHA-256 to `len` bytes.
fn fdh_to_len(msg: &[u8], len: usize) -> BigUint {
    let mut out = Vec::with_capacity(len + 32);
    let mut counter = 0u32;
    while out.len() < len {
        let mut h = Sha256::new();
        h.update(msg);
        h.update(&counter.to_be_bytes());
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(len);
    BigUint::from_bytes_be(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> RsaPrivateKey {
        let mut rng = StdRng::seed_from_u64(42);
        RsaPrivateKey::generate(512, &mut rng)
    }

    #[test]
    fn sign_verify_round_trip() {
        let sk = key();
        let sig = sk.sign(b"hello world");
        assert!(sk.public_key().verify(b"hello world", &sig));
        assert!(!sk.public_key().verify(b"hello worlds", &sig));
    }

    #[test]
    fn crt_matches_plain_signing() {
        let sk = key();
        for msg in [&b"a"[..], b"b", b"the quick brown fox"] {
            assert_eq!(sk.sign(msg), sk.sign_no_crt(msg));
        }
    }

    #[test]
    fn condensed_verifies() {
        let sk = key();
        let msgs: Vec<Vec<u8>> = (0..8u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let sigs: Vec<RsaSignature> = msgs.iter().map(|m| sk.sign(m)).collect();
        let agg = condense(sk.public_key(), &sigs);
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        assert!(sk.public_key().verify_condensed(&refs, &agg));
    }

    #[test]
    fn condensed_rejects_tampered_message() {
        let sk = key();
        let msgs = [&b"alpha"[..], b"beta", b"gamma"];
        let sigs: Vec<RsaSignature> = msgs.iter().map(|m| sk.sign(m)).collect();
        let agg = condense(sk.public_key(), &sigs);
        let tampered = [&b"alpha"[..], b"beta", b"gamme"];
        assert!(!sk.public_key().verify_condensed(&tampered, &agg));
    }

    #[test]
    fn condensed_rejects_dropped_message() {
        let sk = key();
        let msgs = [&b"alpha"[..], b"beta", b"gamma"];
        let sigs: Vec<RsaSignature> = msgs.iter().map(|m| sk.sign(m)).collect();
        let agg = condense(sk.public_key(), &sigs);
        assert!(!sk.public_key().verify_condensed(&msgs[..2], &agg));
    }

    #[test]
    fn condensed_is_order_insensitive() {
        let sk = key();
        let msgs = [&b"alpha"[..], b"beta", b"gamma"];
        let sigs: Vec<RsaSignature> = msgs.iter().map(|m| sk.sign(m)).collect();
        let agg = condense(sk.public_key(), &sigs);
        let shuffled = [&b"gamma"[..], b"alpha", b"beta"];
        assert!(sk.public_key().verify_condensed(&shuffled, &agg));
    }

    #[test]
    fn condense_push_matches_batch() {
        let sk = key();
        let msgs = [&b"one"[..], b"two", b"three"];
        let sigs: Vec<RsaSignature> = msgs.iter().map(|m| sk.sign(m)).collect();
        let batch = condense(sk.public_key(), &sigs);
        let mut incr = CondensedRsaSignature(BigUint::one());
        for s in &sigs {
            incr = condense_push(sk.public_key(), &incr, s);
        }
        assert_eq!(batch, incr);
    }

    #[test]
    fn empty_condensed_is_one() {
        let sk = key();
        let agg = condense(sk.public_key(), &[]);
        assert!(sk.public_key().verify_condensed(&[], &agg));
    }
}
