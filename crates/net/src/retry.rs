//! Deadlines, bounded retries, and jittered exponential backoff.
//!
//! The paper's verifier makes the *content* of an answer trustworthy; this
//! module makes the *transport* survivable without ever trading soundness
//! for liveness. Three rules, all enforced by types rather than discipline:
//!
//! 1. **Every blocking operation has a deadline.** [`ClientConfig`] bounds
//!    connect, read, and write; a stalled or partitioned server costs at
//!    most the deadline budget, never a hung client.
//! 2. **Only transport faults and load sheds are retried.**
//!    [`NetError::is_retryable`] admits timeouts, I/O errors, and
//!    [`NetError::Overloaded`] (the server's typed backpressure shed — an
//!    explicit "come back later"); a decode failure or refusal is an
//!    answer, and re-soliciting it blindly would let a tampering server
//!    use "retry" as a second chance to be believed.
//! 3. **Only idempotent requests are retried.** [`ResilientClient`]
//!    exposes selections, projections, stats, epoch, and ping — not
//!    `Rebalance`. A retried rebalance whose first attempt actually landed
//!    would be refused as a stale epoch, but the restriction keeps the
//!    reasoning local: nothing retried here mutates the server.
//!
//! Backoff is exponential with deterministic jitter: attempt `k` sleeps
//! `min(max_backoff, base << k)` scaled by a factor in `[0.5, 1.0]` drawn
//! from a [splitmix64](https://prng.di.unimi.it/splitmix64.c) stream seeded
//! by [`RetryPolicy::jitter_seed`]. Seeded jitter keeps chaos tests and the
//! `fig_chaos` bench exactly reproducible while still decorrelating
//! concurrent clients in deployment (give each a different seed).

use std::time::Duration;

use authdb_core::qs::{ProjectionAnswer, QsStats, SelectionAnswer};
use authdb_core::shard::{EpochTransition, ShardMap, ShardedSelectionAnswer};
use authdb_wire::DEFAULT_MAX_FRAME_LEN;

use crate::client::QsClient;
use crate::NetError;

/// Deadlines and retry behavior for a resilient connection.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Bound on the TCP connect attempt.
    pub connect_timeout: Duration,
    /// Bound on each blocking read (applies per `read` call, so a response
    /// streamed at a trickle still makes progress as long as every chunk
    /// arrives within this bound).
    pub read_timeout: Duration,
    /// Bound on each blocking write.
    pub write_timeout: Duration,
    /// Cap on a response frame's declared length.
    pub max_frame_len: usize,
    /// How transport faults are retried.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            retry: RetryPolicy::default(),
        }
    }
}

impl ClientConfig {
    /// A tight-deadline profile for tests: sub-second timeouts so a
    /// deliberately stalled peer costs milliseconds, not CI minutes.
    pub fn fast() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_millis(300),
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_millis(300),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(40),
                jitter_seed: 7,
            },
        }
    }

    /// Worst-case wall-clock budget for one request through
    /// [`ResilientClient`]: every attempt hitting its connect + write +
    /// read deadlines, plus every backoff sleep at its maximum. Chaos tests
    /// assert elapsed time never exceeds this — the "never hangs" bound.
    pub fn deadline_budget(&self) -> Duration {
        let attempts = self.retry.max_retries as u32 + 1;
        let per_attempt = self.connect_timeout + self.write_timeout + self.read_timeout;
        let mut backoff = Duration::ZERO;
        for k in 0..self.retry.max_retries {
            backoff += self.retry.backoff_ceiling(k);
        }
        per_attempt * attempts + backoff
    }
}

/// Bounded, jittered exponential backoff.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail on first transport fault).
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(800),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The un-jittered ceiling for the sleep before retry `k` (0-based):
    /// `min(max_backoff, base_backoff * 2^k)`.
    pub fn backoff_ceiling(&self, k: usize) -> Duration {
        let doubled = self
            .base_backoff
            .checked_mul(1u32 << k.min(20))
            .unwrap_or(self.max_backoff);
        doubled.min(self.max_backoff)
    }

    /// The actual sleep before retry `k`: the ceiling scaled by a jitter
    /// factor in `[0.5, 1.0]` drawn deterministically from
    /// `(jitter_seed, k)`.
    pub fn backoff(&self, k: usize) -> Duration {
        let ceiling = self.backoff_ceiling(k);
        let unit = splitmix64(self.jitter_seed.wrapping_add(k as u64)) as f64 / (u64::MAX as f64);
        ceiling.mul_f64(0.5 + 0.5 * unit)
    }
}

/// One step of the splitmix64 PRNG — enough randomness for backoff jitter
/// without pulling a random-number crate into the runtime dependencies.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A client that reconnects and retries idempotent requests through
/// transport faults, under the deadlines and backoff of its
/// [`ClientConfig`]. Each attempt uses a fresh connection: after a timeout
/// or mid-frame disconnect the old stream's framing state is unknown, and a
/// response to a *previous* attempt arriving on a reused stream would be
/// misattributed to the current one.
///
/// `Rebalance` is deliberately absent — it mutates the server and is not
/// safe to blind-retry; drivers that push rebalances use [`QsClient`]
/// directly and handle their own at-most-once semantics.
pub struct ResilientClient {
    addr: String,
    config: ClientConfig,
    attempts: u64,
    bytes_sent: u64,
    bytes_received: u64,
}

impl ResilientClient {
    /// Target `addr` (resolved fresh per attempt) under `config`.
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Self {
        ResilientClient {
            addr: addr.into(),
            config,
            attempts: 0,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// Total connection attempts made (successful or not) — the numerator
    /// of the retry-amplification factor `fig_chaos` measures.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Total bytes written across all attempts.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total bytes read across all attempts.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// The active configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Run one idempotent request, retrying retryable faults with backoff.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut QsClient) -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let mut k = 0usize;
        loop {
            self.attempts += 1;
            let outcome = match QsClient::connect_with(&*self.addr, &self.config) {
                Ok(mut client) => {
                    let r = op(&mut client);
                    self.bytes_sent += client.bytes_sent();
                    self.bytes_received += client.bytes_received();
                    r
                }
                Err(e) => Err(e),
            };
            match outcome {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && k < self.config.retry.max_retries => {
                    std::thread::sleep(self.config.retry.backoff(k));
                    k += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.with_retries(|c| c.ping())
    }

    /// Range selection across all shards (single-endpoint deployments).
    pub fn select_range(&mut self, lo: i64, hi: i64) -> Result<ShardedSelectionAnswer, NetError> {
        self.with_retries(|c| c.select_range(lo, hi))
    }

    /// One shard's tile of a selection, addressed by index.
    pub fn select_shard(
        &mut self,
        shard: usize,
        lo: i64,
        hi: i64,
    ) -> Result<SelectionAnswer, NetError> {
        self.with_retries(|c| c.select_shard(shard, lo, hi))
    }

    /// Projection of `attrs` over the range.
    pub fn project(
        &mut self,
        lo: i64,
        hi: i64,
        attrs: &[usize],
    ) -> Result<ProjectionAnswer, NetError> {
        self.with_retries(|c| c.project(lo, hi, attrs))
    }

    /// The server's proof-construction statistics.
    pub fn stats(&mut self) -> Result<QsStats, NetError> {
        self.with_retries(|c| c.stats())
    }

    /// Per-shard statistics (the auto-rebalance driver's load signal).
    pub fn shard_stats(&mut self) -> Result<Vec<QsStats>, NetError> {
        self.with_retries(|c| c.shard_stats())
    }

    /// The server's live epoch (map + transition chain from genesis).
    pub fn epoch(&mut self) -> Result<(ShardMap, Vec<EpochTransition>), NetError> {
        self.with_retries(|c| c.epoch())
    }

    /// The target address string (re-resolved on every attempt: a failed
    /// endpoint may come back at a new address behind the same name).
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(60),
            jitter_seed: 42,
        };
        for k in 0..8 {
            let ceiling = p.backoff_ceiling(k);
            assert!(ceiling <= Duration::from_millis(60));
            let b1 = p.backoff(k);
            let b2 = p.backoff(k);
            assert_eq!(b1, b2, "jitter must be deterministic per (seed, k)");
            assert!(b1 <= ceiling);
            assert!(b1 >= ceiling.mul_f64(0.5));
        }
        // Exponential until the cap.
        assert_eq!(p.backoff_ceiling(0), Duration::from_millis(10));
        assert_eq!(p.backoff_ceiling(1), Duration::from_millis(20));
        assert_eq!(p.backoff_ceiling(2), Duration::from_millis(40));
        assert_eq!(p.backoff_ceiling(3), Duration::from_millis(60));
    }

    #[test]
    fn deadline_budget_covers_all_attempts() {
        let c = ClientConfig::fast();
        let budget = c.deadline_budget();
        // 3 attempts * (300+300+300)ms + backoffs (10 + 20 capped at 40).
        assert!(budget >= Duration::from_millis(2700));
        assert!(budget <= Duration::from_millis(2700 + 60));
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = RetryPolicy {
            jitter_seed: 1,
            ..RetryPolicy::default()
        };
        let b = RetryPolicy {
            jitter_seed: 2,
            ..RetryPolicy::default()
        };
        let same = (0..4).all(|k| a.backoff(k) == b.backoff(k));
        assert!(
            !same,
            "distinct seeds should give distinct jitter somewhere"
        );
    }
}
