//! The network-fault arm of the adversary catalog.
//!
//! The byte-level [`WireTamper`](crate::tamper::WireTamper) catalog pins
//! what happens when a frame's *content* is attacked; this catalog pins
//! what happens when the *transport itself* misbehaves — and, crucially,
//! that the client's resilience machinery (deadlines, retries, partial
//! answers) never converts a soundness failure into an availability story.
//! Each [`NetFault`] is one scripted [`ChaosProxy`] behavior (or one
//! degradation edge case) with a pinned required outcome, enumerated in
//! [`NetFault::CATALOG`] and driven by [`run_netfault_catalog`], mirroring
//! `authdb_core::adversary`.
//!
//! The scenario is always the same: a 4-shard deployment over keys
//! 0..=390 behind one TCP server, fronted by four chaos proxies (one per
//! shard endpoint), queried over the full range by a [`ShardFanout`]
//! under tight test deadlines. The fault targets shard 1's endpoint; the
//! other three stay honest.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use authdb_core::da::{DaConfig, SigningMode};
use authdb_core::qs::QsOptions;
use authdb_core::record::Schema;
use authdb_core::shard::{ShardedAggregator, ShardedQueryServer};
use authdb_core::verify::{EpochView, PartialVerdict, Verifier, VerifyError};
use authdb_crypto::signer::SchemeKind;

use crate::fanout::ShardFanout;
use crate::fault::{ChaosProxy, Fault, FaultPlan};
use crate::retry::ClientConfig;
use crate::server::{QsServer, QsServerOptions};
use crate::NetError;

/// One way the transport can misbehave, with a pinned required outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Shard 1's endpoint refuses the first connection, then recovers.
    /// Required: the retry succeeds and the final verdict is complete —
    /// indistinguishable from a fault-free run.
    RefuseThenRecover,
    /// Shard 1's endpoint accepts and stalls on every attempt. Required:
    /// every attempt times out ([`NetError::Timeout`]), the fan-out stays
    /// within its deadline budget, and the verdict is a sound partial —
    /// shard 1 `ShardUnavailable`, the other three tiles certified.
    StallTimeout,
    /// Shard 1's endpoint flips the response frame's version byte.
    /// Required: a typed `WireError` with **no retry** — corruption is
    /// evidence, and blind retries would re-solicit it.
    CorruptFrame,
    /// Shard 1's endpoint delivers a well-framed but truncated response
    /// body. Required: a typed `WireError`, no retry.
    TruncateFrame,
    /// Shard 1's endpoint cuts the first response mid-frame, then
    /// recovers. Required: the short read is classified transport, the
    /// retry succeeds, the verdict is complete.
    DisconnectRetry,
    /// Shard 1's endpoint delays every response well inside the read
    /// deadline. Required: no retries, complete verdict — latency alone
    /// is not evidence.
    DelayUnderDeadline,
    /// Shard 1's endpoint is partitioned wholesale. Required: a sound
    /// partial verdict (three certified tiles, shard 1 unavailable), and
    /// a complete verdict again after the partition heals.
    Partition,
    /// All endpoints reachable, but shard 1's part is dropped from the
    /// answer while the outage list stays empty. Required:
    /// [`VerifyError::ShardWithheld`] — a reachable shard that does not
    /// answer is withholding, and degradation never excuses it.
    WithholdReachable,
    /// All endpoints reachable and all parts present, but the client's
    /// outage list (falsely) names shard 1. Required:
    /// [`VerifyError::UnexpectedShardAnswer`] — stale or forged transport
    /// evidence must not launder a part past the unavailability check.
    PhantomUnreachable,
}

impl NetFault {
    /// Every strategy, in catalog order.
    pub const CATALOG: [NetFault; 9] = [
        NetFault::RefuseThenRecover,
        NetFault::StallTimeout,
        NetFault::CorruptFrame,
        NetFault::TruncateFrame,
        NetFault::DisconnectRetry,
        NetFault::DelayUnderDeadline,
        NetFault::Partition,
        NetFault::WithholdReachable,
        NetFault::PhantomUnreachable,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            NetFault::RefuseThenRecover => "refuse-then-recover",
            NetFault::StallTimeout => "stall-timeout",
            NetFault::CorruptFrame => "corrupt-frame",
            NetFault::TruncateFrame => "truncate-frame",
            NetFault::DisconnectRetry => "disconnect-retry",
            NetFault::DelayUnderDeadline => "delay-under-deadline",
            NetFault::Partition => "partition",
            NetFault::WithholdReachable => "withhold-reachable",
            NetFault::PhantomUnreachable => "phantom-unreachable",
        }
    }
}

/// What the client stack concluded about one faulted exchange.
#[derive(Debug)]
pub enum NetOutcome {
    /// Fan-out succeeded and the verdict certifies every tile.
    Complete(PartialVerdict),
    /// Fan-out succeeded with outages and the verdict soundly degrades.
    Partial(PartialVerdict),
    /// Fan-out failed with a typed transport/integrity error.
    Net(NetError),
    /// Fan-out succeeded but verification rejected the answer.
    Verify(VerifyError),
}

/// The record of one catalog entry's run.
#[derive(Debug)]
pub struct NetFaultConformance {
    /// The strategy exercised.
    pub fault: NetFault,
    /// Whether a fault-free fan-out over the same deployment produced a
    /// complete, fully certified verdict (the 0%-fault-rate gate: chaos
    /// machinery must not reject honest answers).
    pub honest_ok: bool,
    /// The faulted exchange's outcome.
    pub outcome: NetOutcome,
    /// Connection attempts the faulted exchange made against the targeted
    /// endpoint (pins retry behavior: recoverable faults retry, integrity
    /// faults must not).
    pub target_attempts: u64,
    /// Whether the faulted exchange finished inside the fan-out's
    /// worst-case deadline budget (the "never hangs" bound).
    pub within_budget: bool,
    /// For [`NetFault::Partition`]: whether a fresh fan-out after healing
    /// produced a complete verdict again. `true` for other strategies.
    pub recovered: bool,
}

impl NetFaultConformance {
    /// Whether the outcome matches the strategy's pinned expectation.
    pub fn ok(&self) -> bool {
        if !self.honest_ok || !self.within_budget || !self.recovered {
            return false;
        }
        match self.fault {
            NetFault::RefuseThenRecover | NetFault::DisconnectRetry => {
                matches!(&self.outcome, NetOutcome::Complete(_)) && self.target_attempts >= 2
            }
            NetFault::DelayUnderDeadline => {
                matches!(&self.outcome, NetOutcome::Complete(_)) && self.target_attempts == 1
            }
            NetFault::StallTimeout | NetFault::Partition => match &self.outcome {
                NetOutcome::Partial(v) => {
                    v.unavailable_shards() == vec![TARGET_SHARD]
                        && v.tiles.iter().filter(|t| t.is_certified()).count() == 3
                }
                _ => false,
            },
            NetFault::CorruptFrame | NetFault::TruncateFrame => {
                matches!(&self.outcome, NetOutcome::Net(NetError::Wire(_)))
                    && self.target_attempts == 1
            }
            NetFault::WithholdReachable => matches!(
                &self.outcome,
                NetOutcome::Verify(VerifyError::ShardWithheld { shard }) if *shard == TARGET_SHARD
            ),
            NetFault::PhantomUnreachable => matches!(
                &self.outcome,
                NetOutcome::Verify(VerifyError::UnexpectedShardAnswer { shard })
                    if *shard == TARGET_SHARD
            ),
        }
    }
}

/// The shard whose endpoint each strategy attacks.
const TARGET_SHARD: usize = 1;

fn cfg(scheme: SchemeKind) -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme,
        mode: SigningMode::Chained,
        rho: 10,
        rho_prime: 10_000,
        buffer_pages: 256,
        fill: 2.0 / 3.0,
    }
}

struct ChaosSystem {
    sa: ShardedAggregator,
    /// Held to keep the upstream serving; the proxies talk to its address.
    _server: QsServer,
    proxies: Vec<ChaosProxy>,
    verifier: Verifier,
    view: EpochView,
    config: ClientConfig,
}

impl ChaosSystem {
    /// 4 shards over keys 0..=390, the shared three-period timeline, one
    /// chaos proxy per shard endpoint (all initially healthy), and tight
    /// test deadlines.
    fn build(scheme: SchemeKind, n: i64) -> Self {
        let mut rng = StdRng::seed_from_u64(1337);
        let span = n * 10;
        let splits = vec![span / 4, span / 2, 3 * span / 4];
        let mut sa = ShardedAggregator::new(cfg(scheme), splits, &mut rng);
        let boots = sa.bootstrap((0..n).map(|i| vec![i * 10, i]).collect(), 2);
        let sqs = ShardedQueryServer::from_bootstraps(
            sa.public_params(),
            sa.config(),
            sa.map().clone(),
            &boots,
            &QsOptions::default(),
        );
        let verifier = Verifier::new(sa.public_params(), sa.config().schema, sa.config().rho);
        let server = QsServer::spawn(sqs, QsServerOptions::default()).expect("bind loopback");

        sa.advance_clock(12);
        publish(&mut sa, &server);
        sa.advance_clock(2);
        let (_, msgs) = sa.update_record(1, 1, vec![sa.map().splits()[0] + 15, 777]);
        server.with_server(|sqs| {
            for (shard, m) in &msgs {
                sqs.apply(*shard, m);
            }
        });
        for dt in [10, 10] {
            sa.advance_clock(dt);
            publish(&mut sa, &server);
        }
        let view = EpochView::genesis(sa.map(), &sa.public_params()).expect("genesis view");

        let proxies: Vec<ChaosProxy> = (0..sa.map().shard_count())
            .map(|_| ChaosProxy::spawn(server.addr(), FaultPlan::healthy()).expect("proxy"))
            .collect();
        ChaosSystem {
            sa,
            _server: server,
            proxies,
            verifier,
            view,
            config: ClientConfig::fast(),
        }
    }

    fn fanout(&self) -> ShardFanout {
        let endpoints = self.proxies.iter().map(|p| p.addr().to_string()).collect();
        ShardFanout::new(self.sa.map().clone(), endpoints, self.config.clone())
    }

    /// Worst case for one whole fan-out: every shard burning its full
    /// per-request deadline budget, plus slack for scheduling.
    fn fanout_budget(&self) -> Duration {
        self.config.deadline_budget() * self.sa.map().shard_count() as u32 + Duration::from_secs(1)
    }

    /// Run a fan-out over the full key range and verify whatever comes
    /// back, partial or not.
    fn exchange(&self, rng: &mut StdRng) -> NetOutcome {
        let mut fanout = self.fanout();
        match fanout.select_range(0, 390) {
            Err(e) => NetOutcome::Net(e),
            Ok(partial) => self.judge(&partial.answer, &partial.unreachable(), rng),
        }
    }

    fn judge(
        &self,
        answer: &authdb_core::shard::ShardedSelectionAnswer,
        unreachable: &[usize],
        rng: &mut StdRng,
    ) -> NetOutcome {
        match self.verifier.verify_partial_selection(
            0,
            390,
            answer,
            unreachable,
            &self.view,
            self.sa.now(),
            true,
            rng,
        ) {
            Ok(v) if v.is_complete() => NetOutcome::Complete(v),
            Ok(v) => NetOutcome::Partial(v),
            Err(e) => NetOutcome::Verify(e),
        }
    }

    /// Script `faults` for the next connections of the target proxy,
    /// padding for ordinals already consumed by earlier exchanges.
    fn script_target(&self, faults: &[Fault]) {
        let consumed = self.proxies[TARGET_SHARD].connections() as usize;
        let mut script = vec![Fault::Pass; consumed];
        script.extend_from_slice(faults);
        self.proxies[TARGET_SHARD].set_plan(FaultPlan::from_script(script));
    }
}

fn publish(sa: &mut ShardedAggregator, server: &QsServer) {
    for (shard, summary, recerts) in sa.maybe_publish_summaries() {
        server.with_server(|sqs| {
            sqs.add_summary(shard, summary);
            for m in &recerts {
                sqs.apply(shard, m);
            }
        });
    }
}

/// Run one catalog strategy against a fresh chaos system.
fn netfault_scenario(scheme: SchemeKind, fault: NetFault) -> NetFaultConformance {
    let mut rng = StdRng::seed_from_u64(4242);
    let sys = ChaosSystem::build(scheme, 40);

    // The 0%-fault gate: the resilient stack must accept honest answers.
    let honest_ok = matches!(sys.exchange(&mut rng), NetOutcome::Complete(_));

    // Arm the strategy.
    let stall_all = vec![Fault::Stall; sys.config.retry.max_retries + 1];
    match fault {
        NetFault::RefuseThenRecover => sys.script_target(&[Fault::RefuseConnect]),
        NetFault::StallTimeout => sys.script_target(&stall_all),
        NetFault::CorruptFrame => sys.script_target(&[Fault::CorruptVersion]),
        NetFault::TruncateFrame => sys.script_target(&[Fault::TruncateFrame]),
        NetFault::DisconnectRetry => sys.script_target(&[Fault::DisconnectMidFrame]),
        NetFault::DelayUnderDeadline => sys.script_target(&[
            Fault::Delay { micros: 20_000 },
            Fault::Delay { micros: 20_000 },
        ]),
        NetFault::Partition => sys.proxies[TARGET_SHARD].partition(true),
        NetFault::WithholdReachable | NetFault::PhantomUnreachable => {}
    }

    let before = sys.proxies[TARGET_SHARD].connections();
    let started = Instant::now();
    let outcome = match fault {
        NetFault::WithholdReachable => {
            // Every endpoint answers; the answer then loses shard 1's part
            // while the outage list stays empty — the malicious-publisher
            // shape degradation must never absorb.
            let mut fanout = sys.fanout();
            let partial = fanout.select_range(0, 390).expect("healthy fan-out");
            assert!(partial.is_complete(), "scenario precondition");
            let mut answer = partial.answer;
            answer.parts.retain(|p| p.shard != TARGET_SHARD);
            sys.judge(&answer, &[], &mut rng)
        }
        NetFault::PhantomUnreachable => {
            // Every part present, but the outage list claims shard 1 was
            // dark — forged transport evidence with the part still riding.
            let mut fanout = sys.fanout();
            let partial = fanout.select_range(0, 390).expect("healthy fan-out");
            assert!(partial.is_complete(), "scenario precondition");
            sys.judge(&partial.answer, &[TARGET_SHARD], &mut rng)
        }
        _ => sys.exchange(&mut rng),
    };
    let elapsed = started.elapsed();
    let target_attempts = sys.proxies[TARGET_SHARD].connections() - before;

    // Partition must heal: availability faults are weather, and the same
    // client must return to complete verdicts once the weather passes.
    let recovered = if fault == NetFault::Partition {
        sys.proxies[TARGET_SHARD].partition(false);
        matches!(sys.exchange(&mut rng), NetOutcome::Complete(_))
    } else {
        true
    };

    NetFaultConformance {
        fault,
        honest_ok,
        outcome,
        target_attempts,
        within_budget: elapsed <= sys.fanout_budget(),
        recovered,
    }
}

/// Run the complete catalog under `scheme`, one fresh deployment per
/// strategy.
pub fn run_netfault_catalog(scheme: SchemeKind) -> Vec<NetFaultConformance> {
    NetFault::CATALOG
        .iter()
        .map(|&f| netfault_scenario(scheme, f))
        .collect()
}

/// Run a subset (the BAS spot check: full crypto once over the strategies
/// whose behavior could plausibly depend on answer sizes and timing).
pub fn run_netfault_spot(scheme: SchemeKind, faults: &[NetFault]) -> Vec<NetFaultConformance> {
    faults
        .iter()
        .map(|&f| netfault_scenario(scheme, f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netfault_catalog_conforms_mock() {
        for c in run_netfault_catalog(SchemeKind::Mock) {
            assert!(
                c.ok(),
                "{}: honest_ok={} within_budget={} recovered={} attempts={} outcome={:?}",
                c.fault.name(),
                c.honest_ok,
                c.within_budget,
                c.recovered,
                c.target_attempts,
                c.outcome
            );
        }
    }

    #[test]
    fn netfault_spot_bas() {
        // Full crypto once: the degradation strategy (real signatures in
        // the certified tiles) and the soundness strategy (a withheld part
        // must still be caught with aggregate verification live).
        for c in run_netfault_spot(
            SchemeKind::Bas,
            &[NetFault::Partition, NetFault::WithholdReachable],
        ) {
            assert!(c.ok(), "{}: {:?}", c.fault.name(), c.outcome);
        }
    }
}
