//! The DA-side auto-rebalance driver: close the loop from live per-shard
//! load back into the partition.
//!
//! The policy half lives in `authdb_core::policy` and is pure — it turns
//! [`ShardLoad`] samples into [`RebalancePlan`]s. This module is the
//! impure half: each [`AutoRebalanceDriver::step`] polls the serving
//! replica's per-shard counters **over the wire** (the same
//! `Request::ShardStats` any operator tool would use), joins them with the
//! DA's own facts (live record counts, median keys — the trusted side is
//! the only party that knows where a sound split key lies), and when the
//! policy proposes a move, certifies it through
//! [`ShardedAggregator::rebalance`] and pushes the package to the live
//! server through the ordinary `Request::Rebalance` channel.
//!
//! Nothing in the loop weakens the paper's trust story: the QS only ever
//! reports *telemetry* (counters carry no proofs and decide nothing about
//! correctness), and the only state change is a DA-certified epoch
//! transition the verifier was already required to handle.

use std::fmt;

use authdb_core::policy::{AutoRebalancer, LoadPolicy, PolicyError, ShardLoad};
use authdb_core::shard::{RebalancePlan, ShardedAggregator};

use crate::client::QsClient;
use crate::NetError;

/// Why a driver round failed: the wire broke, or the policy saw load it
/// could not soundly act on. Both are operator signals, not soundness
/// events — no answer was affected either way.
#[derive(Debug)]
pub enum AutoRebalanceError {
    /// Polling the stats or pushing the certified package failed. If the
    /// push failed *after* the DA certified the new epoch, the DA and the
    /// server have diverged and the caller must re-push (the package is
    /// deterministic) or retire the replica.
    Net(NetError),
    /// The policy demanded a move it could not soundly make (shard cap,
    /// unsplittable hotspot) — see [`PolicyError`].
    Policy(PolicyError),
}

impl fmt::Display for AutoRebalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoRebalanceError::Net(e) => write!(f, "auto-rebalance wire fault: {e}"),
            AutoRebalanceError::Policy(e) => write!(f, "auto-rebalance policy fault: {e}"),
        }
    }
}

impl std::error::Error for AutoRebalanceError {}

/// The stateful driver loop: construct once, call [`step`] once per
/// observation round (the cadence is the caller's — a timer tick, a bench
/// iteration, a test round).
///
/// [`step`]: AutoRebalanceDriver::step
pub struct AutoRebalanceDriver {
    rebalancer: AutoRebalancer,
    jobs: usize,
}

impl AutoRebalanceDriver {
    /// A driver running `policy`, certifying handoffs with `jobs` signing
    /// workers.
    pub fn new(policy: LoadPolicy, jobs: usize) -> Self {
        AutoRebalanceDriver {
            rebalancer: AutoRebalancer::new(policy),
            jobs: jobs.max(1),
        }
    }

    /// One observation round. Returns the plan that was certified and
    /// pushed this round, if any; `Ok(None)` is the steady state.
    pub fn step(
        &mut self,
        sa: &mut ShardedAggregator,
        client: &mut QsClient,
    ) -> Result<Option<RebalancePlan>, AutoRebalanceError> {
        let stats = client.shard_stats().map_err(AutoRebalanceError::Net)?;
        // A transient topology disagreement (our own push racing the poll)
        // is not a fault: skip the round, the policy re-arms next sample.
        if stats.len() != sa.map().shard_count() {
            return Ok(None);
        }
        let idx = sa.config().schema.indexed_attr;
        let loads: Vec<ShardLoad> = stats
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let da = sa.shard(i);
                ShardLoad {
                    stats: s,
                    records: da.live_records(),
                    median_key: median_key(da.live_rows(), idx),
                }
            })
            .collect();
        let plan = self
            .rebalancer
            .observe(sa.map().splits(), &loads)
            .map_err(AutoRebalanceError::Policy)?;
        let Some(plan) = plan else {
            return Ok(None);
        };
        let rb = sa.rebalance(plan, self.jobs);
        client.rebalance(&rb).map_err(AutoRebalanceError::Net)?;
        Ok(Some(plan))
    }
}

/// The middle live key of a shard — the policy's split candidate.
fn median_key(rows: Vec<Vec<i64>>, idx: usize) -> Option<i64> {
    let mut keys: Vec<i64> = rows.iter().map(|r| r[idx]).collect();
    if keys.is_empty() {
        return None;
    }
    keys.sort_unstable();
    Some(keys[keys.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use authdb_wire::WireError;

    #[test]
    fn driver_errors_keep_their_halves_typed() {
        // The two failure classes stay distinguishable end to end: an
        // operator alerting on AutoRebalanceError::Policy(ShardLimit) must
        // never be paged for AutoRebalanceError::Net(timeout) weather.
        let net = AutoRebalanceError::Net(NetError::Wire(WireError::Truncated));
        assert!(format!("{net}").contains("wire fault"));
        let policy = AutoRebalanceError::Policy(PolicyError::ShardLimit { max: 8 });
        assert!(format!("{policy}").contains("policy fault"));
        assert!(matches!(
            policy,
            AutoRebalanceError::Policy(PolicyError::ShardLimit { .. })
        ));
    }

    #[test]
    fn median_key_is_none_only_for_empty_shards() {
        assert_eq!(median_key(vec![], 0), None);
        assert_eq!(median_key(vec![vec![7, 0]], 0), Some(7));
        let rows: Vec<Vec<i64>> = [30, 10, 20, 40].iter().map(|&k| vec![k, 0]).collect();
        assert_eq!(median_key(rows, 0), Some(30));
    }
}
