//! The blocking query-server client.
//!
//! A [`QsClient`] owns one TCP connection and exchanges framed
//! request/response pairs — one at a time, or as an id-tagged pipelined
//! batch ([`QsClient::pipeline_select`]) that amortizes the round-trip
//! over many queries. It decodes — nothing more: every answer must
//! still go through the existing `Verifier` on the caller's side, with the
//! caller's own clock and independently obtained public parameters. The
//! client also meters bytes in both directions, which is what the `fig_net`
//! bench uses to check the simulator's message-size model against reality.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

use authdb_core::qs::{ProjectionAnswer, QsStats, SelectionAnswer};
use authdb_core::shard::{
    EpochBootstrap, EpochTransition, Rebalance, ShardMap, ShardedSelectionAnswer,
};
use authdb_core::wire::{Request, Response};
use authdb_wire::{deframe, frame, DEFAULT_MAX_FRAME_LEN};

use crate::retry::ClientConfig;
use crate::{read_frame_body, NetError};

/// A connected client.
pub struct QsClient {
    stream: TcpStream,
    max_frame_len: usize,
    bytes_sent: u64,
    bytes_received: u64,
    last_response_bytes: usize,
}

impl QsClient {
    /// Connect with the default response-frame cap.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_with_cap(addr, DEFAULT_MAX_FRAME_LEN)
    }

    /// Connect with an explicit cap on a response frame's declared length —
    /// the client-side guard against a malicious server's oversized length
    /// prefix.
    pub fn connect_with_cap(
        addr: impl ToSocketAddrs,
        max_frame_len: usize,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(QsClient {
            stream,
            max_frame_len,
            bytes_sent: 0,
            bytes_received: 0,
            last_response_bytes: 0,
        })
    }

    /// Connect with deadlines: the connect attempt, every read, and every
    /// write are bounded by `config`. A fired deadline surfaces as
    /// [`NetError::Timeout`] — this is the connection the chaos suite uses,
    /// because it provably cannot hang on a stalled or partitioned peer.
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<Self, NetError> {
        let mut last: Option<std::io::Error> = None;
        let mut stream = None;
        for a in addr
            .to_socket_addrs()
            .map_err(|e| NetError::from_io(e, "resolve"))?
        {
            match TcpStream::connect_timeout(&a, config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let stream = match stream {
            Some(s) => s,
            None => {
                let e = last.unwrap_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses resolved")
                });
                return Err(NetError::from_io(e, "connect"));
            }
        };
        stream.set_nodelay(true)?;
        stream
            .set_read_timeout(Some(config.read_timeout))
            .map_err(|e| NetError::from_io(e, "connect"))?;
        stream
            .set_write_timeout(Some(config.write_timeout))
            .map_err(|e| NetError::from_io(e, "connect"))?;
        Ok(QsClient {
            stream,
            max_frame_len: config.max_frame_len,
            bytes_sent: 0,
            bytes_received: 0,
            last_response_bytes: 0,
        })
    }

    /// Total bytes written to the server.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total bytes read from the server (frame headers included).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Size of the most recent response, header included — the per-answer
    /// bytes-on-wire measurement.
    pub fn last_response_bytes(&self) -> usize {
        self.last_response_bytes
    }

    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        let out = frame(request);
        self.stream
            .write_all(&out)
            .map_err(|e| NetError::from_io(e, "write"))?;
        self.bytes_sent += out.len() as u64;
        let response = self.read_response()?;
        // A shed is never the answer to anything: surface it as the typed
        // retryable error before any per-method matching.
        match response {
            Response::Busy => Err(NetError::Overloaded),
            r => Ok(r),
        }
    }

    fn read_response(&mut self) -> Result<Response, NetError> {
        let body = read_frame_body(&mut self.stream, self.max_frame_len)?;
        self.last_response_bytes = 4 + body.len();
        self.bytes_received += self.last_response_bytes as u64;
        Ok(deframe(&body)?)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Refused(e) => Err(NetError::Refused(e)),
            _ => Err(NetError::Protocol("expected Pong")),
        }
    }

    /// Range selection `lo <= Aind <= hi`. The returned fan-out answer is
    /// exactly what `Verifier::verify_sharded_selection` consumes.
    pub fn select_range(&mut self, lo: i64, hi: i64) -> Result<ShardedSelectionAnswer, NetError> {
        match self.call(&Request::Select { lo, hi })? {
            Response::Selection(answer) => Ok(answer),
            Response::Refused(e) => Err(NetError::Refused(e)),
            _ => Err(NetError::Protocol("expected Selection")),
        }
    }

    /// One shard's tile of a range selection, addressed by shard index —
    /// the per-endpoint request a [`ShardFanout`](crate::ShardFanout)
    /// issues so that one partitioned shard cannot take the whole answer
    /// down with it. The sub-range and index come from the client's pinned
    /// map, never from the server.
    pub fn select_shard(
        &mut self,
        shard: usize,
        lo: i64,
        hi: i64,
    ) -> Result<SelectionAnswer, NetError> {
        let request = Request::SelectShard {
            shard: shard as u32,
            lo,
            hi,
        };
        match self.call(&request)? {
            Response::ShardSelection(answer) => Ok(*answer),
            Response::Refused(e) => Err(NetError::Refused(e)),
            _ => Err(NetError::Protocol("expected ShardSelection")),
        }
    }

    /// Projection of `attrs` over the range, for
    /// `Verifier::verify_projection`.
    pub fn project(
        &mut self,
        lo: i64,
        hi: i64,
        attrs: &[usize],
    ) -> Result<ProjectionAnswer, NetError> {
        let attrs: Vec<u32> = attrs.iter().map(|&a| a as u32).collect();
        match self.call(&Request::Project { lo, hi, attrs })? {
            Response::Projection(answer) => Ok(answer),
            Response::Refused(e) => Err(NetError::Refused(e)),
            _ => Err(NetError::Protocol("expected Projection")),
        }
    }

    /// The server's aggregated proof-construction statistics.
    pub fn stats(&mut self) -> Result<QsStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Refused(e) => Err(NetError::Refused(e)),
            _ => Err(NetError::Protocol("expected Stats")),
        }
    }

    /// Per-shard proof-construction statistics, in shard order — the load
    /// signal an auto-rebalance driver feeds to
    /// `authdb_core::policy::AutoRebalancer`.
    pub fn shard_stats(&mut self) -> Result<Vec<QsStats>, NetError> {
        match self.call(&Request::ShardStats)? {
            Response::ShardStats(stats) => Ok(stats),
            Response::Refused(e) => Err(NetError::Refused(e)),
            _ => Err(NetError::Protocol("expected ShardStats")),
        }
    }

    /// Pipeline a batch of range selections over this one connection:
    /// every request is written up front as an id-tagged frame, then all
    /// responses are read back and matched by their echoed ids. One
    /// round-trip's latency is paid once for the whole batch instead of
    /// once per query — the multiplexing win `fig_conc` measures.
    ///
    /// The outer `Result` is the connection's fate; the per-query results
    /// distinguish an answer from a typed per-request failure (a refusal,
    /// or a [`NetError::Overloaded`] shed under backpressure — retryable
    /// individually without abandoning the batch's other answers).
    #[allow(clippy::type_complexity)]
    pub fn pipeline_select(
        &mut self,
        ranges: &[(i64, i64)],
    ) -> Result<Vec<Result<ShardedSelectionAnswer, NetError>>, NetError> {
        let mut out = Vec::with_capacity(ranges.len() * 16);
        for (id, &(lo, hi)) in ranges.iter().enumerate() {
            let request = Request::Tagged {
                id: id as u64,
                inner: Box::new(Request::Select { lo, hi }),
            };
            out.extend_from_slice(&frame(&request));
        }
        self.stream
            .write_all(&out)
            .map_err(|e| NetError::from_io(e, "write"))?;
        self.bytes_sent += out.len() as u64;

        let mut results: Vec<Option<Result<ShardedSelectionAnswer, NetError>>> =
            (0..ranges.len()).map(|_| None).collect();
        for _ in 0..ranges.len() {
            let (id, inner) = match self.read_response()? {
                Response::Tagged { id, inner } => (id, *inner),
                _ => return Err(NetError::Protocol("expected Tagged response")),
            };
            let slot = results
                .get_mut(id as usize)
                .ok_or(NetError::Protocol("tagged response to an unknown id"))?;
            if slot.is_some() {
                return Err(NetError::Protocol("duplicate tagged response id"));
            }
            *slot = Some(match inner {
                Response::Selection(answer) => Ok(answer),
                Response::Busy => Err(NetError::Overloaded),
                Response::Refused(e) => Err(NetError::Refused(e)),
                _ => Err(NetError::Protocol("expected Selection in Tagged")),
            });
        }
        // Every id in 0..n seen exactly once (unknowns and duplicates were
        // typed errors above), so every slot is filled.
        Ok(results.into_iter().flatten().collect())
    }

    /// The server's live epoch: its current map plus the transition chain
    /// from the genesis partition. Feed the pair to
    /// `EpochView::observe` — the client decides nothing here.
    pub fn epoch(&mut self) -> Result<(ShardMap, Vec<EpochTransition>), NetError> {
        match self.call(&Request::Epoch)? {
            Response::Epoch { map, transitions } => Ok((map, transitions)),
            Response::Refused(e) => Err(NetError::Refused(e)),
            _ => Err(NetError::Protocol("expected Epoch")),
        }
    }

    /// The server's latest certified bootstrap bundle: the current map,
    /// its transition, and the epoch checkpoint hash-chained to it. Feed
    /// it to `EpochView::from_checkpoint` — a fresh client verifies O(1)
    /// signatures regardless of how many epochs have passed, instead of
    /// replaying [`QsClient::epoch`]'s chain from genesis.
    pub fn checkpoint(&mut self) -> Result<EpochBootstrap, NetError> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpoint(boot) => Ok(*boot),
            Response::Refused(e) => Err(NetError::Refused(e)),
            _ => Err(NetError::Protocol("expected Checkpoint")),
        }
    }

    /// Push a DA-certified rebalance package to the live server (the
    /// epoch-bump channel a DA-side driver uses; a structurally
    /// inconsistent package is refused without touching the server).
    pub fn rebalance(&mut self, rb: &Rebalance) -> Result<(), NetError> {
        match self.call(&Request::Rebalance(Box::new(rb.clone())))? {
            Response::Rebalanced => Ok(()),
            Response::Refused(e) => Err(NetError::Refused(e)),
            _ => Err(NetError::Protocol("expected Rebalanced")),
        }
    }
}
