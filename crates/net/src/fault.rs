//! Deterministic fault injection: a chaos proxy for the QS wire protocol.
//!
//! [`ChaosProxy`] sits between a client and any QS TCP endpoint and applies
//! *scheduled* faults — refuse, stall, delay, mid-frame disconnect,
//! truncation, bit corruption, partition — one per accepted connection,
//! driven by a [`FaultPlan`]. Determinism is the point: a chaos test that
//! fails must replay byte-for-byte from its seed, so the plan is a script
//! indexed by connection ordinal, not a coin flipped at fault time.
//!
//! The proxy understands the frame format just enough to be surgical: it
//! relays whole frames (4-byte length prefix + body) in each direction, so
//! "disconnect mid-frame" can cut a response at half its body and
//! "corrupt" can flip a chosen bit of a response body rather than of some
//! arbitrary TCP segment. Faults apply to the **response** path — the
//! direction an adversarial network (or publisher) attacks, and the one the
//! verifier must survive.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// One scheduled fault, applied to a single proxied connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Relay faithfully.
    Pass,
    /// Close the client connection immediately after accept — the client
    /// observes a refused/reset connect, as if the endpoint were down.
    RefuseConnect,
    /// Accept, read the request, then send nothing until the client's read
    /// deadline fires (the slow-loris server / silent partition case).
    Stall,
    /// Relay, but sleep this long before forwarding each response frame
    /// (latency within or beyond the deadline, the plan decides).
    Delay {
        /// Added one-way delay in microseconds.
        micros: u64,
    },
    /// Forward exactly half of the response body, then close — a short
    /// read that the client must classify as transport, not content.
    DisconnectMidFrame,
    /// Deliver a *complete* frame whose declared length (and body) is one
    /// byte short of the real answer. Framing succeeds, decoding fails with
    /// a typed truncation `WireError` — distinguishing "the bytes lie"
    /// (fail fast) from "the bytes stopped" (retry), which a mid-frame cut
    /// cannot.
    TruncateFrame,
    /// Flip the version byte of the response frame. Deterministically
    /// surfaces as `WireError::UnsupportedVersion` — the pinned
    /// corrupt-frame catalog row.
    CorruptVersion,
    /// Flip one bit of the response body payload. The decode outcome
    /// depends on what the bit hits (typed `WireError` or a verifier
    /// rejection) — chaos-suite material, where any typed failure is
    /// acceptable and only a *silently accepted wrong answer* is not.
    CorruptBody {
        /// Which payload bit to flip (wrapped modulo the body length).
        bit: u64,
    },
}

/// A reproducible fault schedule: connection `k` (in accept order) gets
/// `script[k]`; connections beyond the script relay faithfully. The
/// whole-proxy [`ChaosProxy::partition`] switch overrides the script — a
/// partitioned endpoint refuses everything until healed.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Per-connection faults, in accept order.
    pub script: Vec<Fault>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn healthy() -> Self {
        FaultPlan { script: Vec::new() }
    }

    /// An explicit per-connection schedule.
    pub fn from_script(script: Vec<Fault>) -> Self {
        FaultPlan { script }
    }

    /// A seeded random schedule of `len` connections: each is a stall with
    /// probability `drop_pct`%, else a delay of `delay` with probability
    /// `delay_pct`%, else a faithful relay. Same seed, same schedule —
    /// always. (Stall-not-reset models the nastier drop: the client must
    /// *time out*, not just observe an error.)
    pub fn seeded(seed: u64, len: usize, drop_pct: u8, delay_pct: u8, delay: Duration) -> Self {
        let mut state = seed;
        let script = (0..len)
            .map(|_| {
                state = splitmix64(state);
                let roll = (state % 100) as u8;
                if roll < drop_pct {
                    Fault::Stall
                } else if roll < drop_pct.saturating_add(delay_pct) {
                    Fault::Delay {
                        micros: delay.as_micros() as u64,
                    }
                } else {
                    Fault::Pass
                }
            })
            .collect();
        FaultPlan { script }
    }

    /// The fault for connection ordinal `k`.
    pub fn fault_for(&self, k: u64) -> Fault {
        self.script.get(k as usize).copied().unwrap_or(Fault::Pass)
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Upper bound on how long a [`Fault::Stall`] holds a connection open. Far
/// beyond any test deadline (the client gives up first) but finite, so an
/// orphaned stall thread cannot outlive a test binary by much.
const STALL_CAP: Duration = Duration::from_secs(30);

struct ProxyShared {
    upstream: SocketAddr,
    plan: Mutex<FaultPlan>,
    partitioned: AtomicBool,
    connections: AtomicU64,
    stop: AtomicBool,
    /// Condvar twin of `stop`: stall threads wait on this instead of
    /// sleep-polling, so shutdown wakes them immediately and an orphaned
    /// stall still dies at the cap.
    stopped: Mutex<bool>,
    stop_cv: Condvar,
}

/// A fault-injecting TCP proxy in front of one QS endpoint.
///
/// Each accepted client connection opens its own upstream connection and
/// relays framed traffic, applying the fault its ordinal draws from the
/// plan. The connection counter doubles as the retry-attempt meter: a
/// client that reconnects per attempt registers one proxied connection per
/// attempt, which is how `fig_chaos` measures retry amplification without
/// instrumenting the client.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Listen on an OS-chosen loopback port, relaying to `upstream` under
    /// `plan`.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream,
            plan: Mutex::new(plan),
            partitioned: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            stopped: Mutex::new(false),
            stop_cv: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let k = accept_shared.connections.fetch_add(1, Ordering::AcqRel);
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || proxy_connection(stream, k, conn_shared));
            }
        });
        Ok(ChaosProxy {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace the fault schedule (connection ordinals keep counting).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.shared.plan.lock() = plan;
    }

    /// Sever (or heal) the endpoint wholesale: while partitioned, every
    /// connection — current ordinal notwithstanding — is refused.
    pub fn partition(&self, on: bool) {
        self.shared.partitioned.store(on, Ordering::Release);
    }

    /// Connections accepted so far (the retry-attempt meter).
    pub fn connections(&self) -> u64 {
        self.shared.connections.load(Ordering::Acquire)
    }

    /// Stop accepting and join the accept thread. Stalled relay threads
    /// are woken through the stop condvar immediately; relaying ones wind
    /// down at connection end.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        *self.shared.stopped.lock() = true;
        self.shared.stop_cv.notify_all();
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_accepting();
        }
    }
}

/// Read one whole frame (4-byte length prefix + body) without interpreting
/// it. Length is bounds-checked so a corrupt peer cannot make the proxy
/// allocate unboundedly.
fn read_raw_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > authdb_wire::DEFAULT_MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large to relay",
        ));
    }
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&header);
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    out.extend_from_slice(&body);
    Ok(out)
}

/// Hold the connection open, sending nothing, until the proxy's stop
/// condvar fires or the stall cap passes — whichever first. The client's
/// deadline is expected to fire long before either; a waiting stall costs
/// zero wakeups until then (no sleep-poll tick), and shutdown releases it
/// instantly.
fn stall(shared: &ProxyShared) {
    let deadline = Instant::now() + STALL_CAP;
    let mut stopped = shared.stopped.lock();
    while !*stopped {
        if shared
            .stop_cv
            .wait_until(&mut stopped, deadline)
            .timed_out()
        {
            break;
        }
    }
}

/// Relay one client connection under its scheduled fault.
fn proxy_connection(mut client: TcpStream, ordinal: u64, shared: Arc<ProxyShared>) {
    let fault = if shared.partitioned.load(Ordering::Acquire) {
        Fault::RefuseConnect
    } else {
        shared.plan.lock().fault_for(ordinal)
    };
    if fault == Fault::RefuseConnect {
        // Drop the accepted socket immediately; the client sees a closed
        // connection on (or immediately after) connect.
        return;
    }
    let _ = client.set_nodelay(true);
    // Bound relay reads so a dead peer cannot pin this thread forever.
    let _ = client.set_read_timeout(Some(STALL_CAP));
    let Ok(mut upstream) = TcpStream::connect(shared.upstream) else {
        return;
    };
    let _ = upstream.set_nodelay(true);
    let _ = upstream.set_read_timeout(Some(STALL_CAP));

    loop {
        // Request direction: always relayed faithfully (the catalog attacks
        // the answer path; a mangled request would just be refused).
        let Ok(request) = read_raw_frame(&mut client) else {
            return;
        };
        if upstream.write_all(&request).is_err() {
            return;
        }
        if fault == Fault::Stall {
            // The upstream has the request; the client never hears back.
            stall(&shared);
            return;
        }
        let Ok(mut response) = read_raw_frame(&mut upstream) else {
            return;
        };
        match fault {
            Fault::Pass | Fault::RefuseConnect | Fault::Stall => {}
            Fault::Delay { micros } => {
                std::thread::sleep(Duration::from_micros(micros));
            }
            Fault::DisconnectMidFrame => {
                let half = response.len() / 2;
                let _ = client.write_all(&response[..half]);
                return;
            }
            Fault::TruncateFrame => {
                // Shorten both the declared length and the body by one
                // byte; the client reads a well-framed but truncated
                // payload and the *decoder* reports it.
                let len = u32::from_be_bytes([response[0], response[1], response[2], response[3]]);
                if len > 1 {
                    response[..4].copy_from_slice(&(len - 1).to_be_bytes());
                    response.pop();
                }
            }
            Fault::CorruptVersion => {
                if response.len() > 4 {
                    response[4] ^= 0x80;
                }
            }
            Fault::CorruptBody { bit } => {
                // Flip a payload bit (past the version byte) so framing
                // survives and the corruption reaches the decoder/verifier.
                if response.len() > 5 {
                    let payload_bits = ((response.len() - 5) * 8) as u64;
                    let b = (bit % payload_bits) as usize;
                    response[5 + b / 8] ^= 1 << (b % 8);
                }
            }
        }
        if client.write_all(&response).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(99, 64, 20, 30, Duration::from_millis(5));
        let b = FaultPlan::seeded(99, 64, 20, 30, Duration::from_millis(5));
        assert_eq!(a.script, b.script);
        let c = FaultPlan::seeded(100, 64, 20, 30, Duration::from_millis(5));
        assert_ne!(a.script, c.script, "different seeds should differ");
        // Rates land in the right ballpark for 64 draws.
        let stalls = a.script.iter().filter(|f| **f == Fault::Stall).count();
        assert!(stalls > 0 && stalls < 32);
    }

    #[test]
    fn plan_defaults_to_pass_beyond_script() {
        let plan = FaultPlan::from_script(vec![Fault::Stall]);
        assert_eq!(plan.fault_for(0), Fault::Stall);
        assert_eq!(plan.fault_for(1), Fault::Pass);
        assert_eq!(plan.fault_for(1_000_000), Fault::Pass);
    }
}
