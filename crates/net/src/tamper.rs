//! The wire-tamper arm of the adversary catalog.
//!
//! The in-process catalogs (`authdb_core::adversary`) attack the *content*
//! of answers; these strategies attack the *bytes*. Each entry corrupts an
//! outgoing response frame the way a malicious server or a hostile network
//! element could, and pins the typed error the client stack must surface —
//! a [`WireError`] from the codec or a `VerifyError` from the verifier,
//! never a panic and never an allocation driven by attacker-declared
//! lengths.

use authdb_wire::WireError;

/// One way to corrupt a response frame in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireTamper {
    /// Flip one bit inside the frame's trailing signature field (the last
    /// field of the last attached summary, in the scripted scenarios). The
    /// frame still parses structurally; either the compressed point is no
    /// longer canonical/on-curve (decode rejects) or it decodes to a
    /// different group element (the signature check rejects).
    BitFlipSignature,
    /// Drop the frame's tail and shrink the length prefix to match — a
    /// truncated but internally consistent frame. Decoding runs out of
    /// input mid-payload.
    TruncateFrame,
    /// Rewrite the version byte to an unsupported value. Readers must
    /// refuse to reinterpret the payload under another grammar.
    VersionDowngrade,
    /// Rewrite the length prefix to `u32::MAX`. The reader must reject at
    /// the header, *before* allocating a body buffer.
    OversizedLength,
}

impl WireTamper {
    /// Every strategy, in catalog order.
    pub const CATALOG: [WireTamper; 4] = [
        WireTamper::BitFlipSignature,
        WireTamper::TruncateFrame,
        WireTamper::VersionDowngrade,
        WireTamper::OversizedLength,
    ];

    /// Short printable name.
    pub fn name(self) -> &'static str {
        match self {
            WireTamper::BitFlipSignature => "bitflip-signature",
            WireTamper::TruncateFrame => "truncate-frame",
            WireTamper::VersionDowngrade => "version-downgrade",
            WireTamper::OversizedLength => "oversized-length",
        }
    }

    /// Corrupt a complete frame (4-byte header + body) in place. Frames too
    /// small to host the corruption are left alone (the scripted scenarios
    /// never produce them).
    pub fn apply(self, frame: &mut Vec<u8>) {
        match self {
            WireTamper::BitFlipSignature => {
                // The scripted answers end with a signature field; flipping
                // a low-order bit of the penultimate byte lands inside its
                // x-coordinate (BAS) or accumulator (Mock).
                if frame.len() > 8 {
                    let idx = frame.len() - 2;
                    frame[idx] ^= 0x01;
                }
            }
            WireTamper::TruncateFrame => {
                if frame.len() > 16 {
                    frame.truncate(frame.len() - 8);
                    let body = (frame.len() - 4) as u32;
                    frame[..4].copy_from_slice(&body.to_be_bytes());
                }
            }
            WireTamper::VersionDowngrade => {
                if frame.len() > 4 {
                    frame[4] = 0;
                }
            }
            WireTamper::OversizedLength => {
                frame[..4].copy_from_slice(&u32::MAX.to_be_bytes());
            }
        }
    }

    /// Whether `err` is the codec-level rejection this strategy pins. The
    /// bit-flip strategy may instead survive decoding and die at the
    /// verifier (see [`WireTamper::expects_verify_names`]).
    pub fn expects_wire(self, err: &WireError) -> bool {
        match self {
            // A flipped x-coordinate bit either leaves the curve (rejected
            // here) or moves to another point (rejected by the verifier).
            WireTamper::BitFlipSignature => matches!(err, WireError::InvalidPoint),
            // Running out of input surfaces as Truncated when a fixed field
            // is cut short, or as LengthOverflow when a collection's count
            // guard sees the shortfall first — both are the same refusal.
            WireTamper::TruncateFrame => {
                matches!(err, WireError::Truncated | WireError::LengthOverflow { .. })
            }
            WireTamper::VersionDowngrade => {
                matches!(err, WireError::UnsupportedVersion { .. })
            }
            WireTamper::OversizedLength => matches!(err, WireError::FrameTooLarge { .. }),
        }
    }

    /// The `VerifyError` variant names acceptable when the tampered frame
    /// still decodes (only reachable for the bit-flip strategy: the flipped
    /// signature is structurally valid but verifies against nothing).
    pub fn expects_verify_names(self) -> &'static [&'static str] {
        match self {
            WireTamper::BitFlipSignature => &["BadSummarySignature", "BadAggregate"],
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use authdb_wire::{decode_frame, frame, DEFAULT_MAX_FRAME_LEN};

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = WireTamper::CATALOG.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WireTamper::CATALOG.len());
    }

    #[test]
    fn structural_tampers_surface_pinned_wire_errors() {
        let msg: Vec<u64> = (0..8).collect();
        for t in [
            WireTamper::TruncateFrame,
            WireTamper::VersionDowngrade,
            WireTamper::OversizedLength,
        ] {
            let mut f = frame(&msg);
            t.apply(&mut f);
            // Oversized length: check the header path exactly as a stream
            // reader would, without the body.
            let err = if t == WireTamper::OversizedLength {
                authdb_wire::frame_body_len(f[..4].try_into().unwrap(), DEFAULT_MAX_FRAME_LEN)
                    .expect_err("oversized prefix rejected")
            } else {
                decode_frame::<Vec<u64>>(&f, DEFAULT_MAX_FRAME_LEN)
                    .expect_err("tampered frame rejected")
            };
            assert!(t.expects_wire(&err), "{}: unexpected {err:?}", t.name());
        }
    }
}
