//! # authdb-net — the networked query server
//!
//! The paper's setting is an *outsourced* publisher answering clients over
//! a network (Section 5 models an OC-12 DA uplink and a 14.4 Mbps HSDPA
//! user link); this crate turns the in-process
//! [`ShardedQueryServer`](authdb_core::shard::ShardedQueryServer) into an
//! actual TCP service speaking the canonical [`authdb_wire`] format:
//!
//! * [`QsServer`] — a blocking, thread-per-connection server. Each
//!   connection carries a sequence of framed
//!   [`Request`](authdb_core::wire::Request)s, each answered with exactly
//!   one framed [`Response`](authdb_core::wire::Response).
//! * [`QsClient`] — a blocking client whose decoded answers feed straight
//!   into the **existing** `Verifier` (`verify_sharded_selection` /
//!   `verify_projection`). The verifier is not weakened or forked for the
//!   network path: the client performs *no* trust decisions of its own —
//!   it only decodes, and decoding failures are typed [`WireError`]s.
//! * [`WireTamper`] — the byte-level arm of the adversary catalog: frame
//!   corruptions a malicious server (or the network) can apply, each pinned
//!   to the typed error it must surface as. A server handle can be armed
//!   with one to play the adversary in integration tests.
//!
//! A peer speaking garbage can at worst make the other side drop the
//! connection: frames are length-capped before allocation, decoding is
//! panic-free, and a request the server cannot decode closes the stream
//! (once framing is lost there is no way to resynchronize, and answering
//! unparseable bytes would mean guessing what was asked).

pub mod client;
pub mod server;
pub mod tamper;

pub use client::QsClient;
pub use server::{QsServer, QsServerOptions};
pub use tamper::WireTamper;

use std::fmt;
use std::io::Read;

use authdb_core::qs::QueryError;
use authdb_wire::WireError;

/// Why a network operation failed.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read, write, EOF mid-frame).
    Io(std::io::Error),
    /// The peer's bytes failed canonical decoding.
    Wire(WireError),
    /// The server refused the request with its own typed error.
    Refused(QueryError),
    /// The server answered with a well-formed but wrong-kinded response
    /// (e.g. a projection to a selection request).
    Protocol(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Refused(e) => write!(f, "server refused: {e}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// Read one frame body (version byte + payload) from a stream. The header's
/// declared length is checked against `max` **before** the body buffer is
/// allocated, so a lying prefix cannot reserve memory.
pub(crate) fn read_frame_body(stream: &mut impl Read, max: usize) -> Result<Vec<u8>, NetError> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let body_len = authdb_wire::frame_body_len(header, max)?;
    let mut body = vec![0u8; body_len];
    stream.read_exact(&mut body)?;
    Ok(body)
}
