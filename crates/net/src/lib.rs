#![forbid(unsafe_code)]
//! # authdb-net — the networked query server
//!
//! The paper's setting is an *outsourced* publisher answering clients over
//! a network (Section 5 models an OC-12 DA uplink and a 14.4 Mbps HSDPA
//! user link); this crate turns the in-process
//! [`ShardedQueryServer`](authdb_core::shard::ShardedQueryServer) into an
//! actual TCP service speaking the canonical [`authdb_wire`] format:
//!
//! * [`QsServer`] — a non-blocking event-loop server: one readiness loop
//!   over non-blocking sockets accepts, reads, dispatches, and writes for
//!   every connection. Each connection carries a sequence of framed
//!   [`Request`](authdb_core::wire::Request)s — classic one-at-a-time
//!   exchanges or pipelined [`Request::Tagged`](authdb_core::wire::Request)
//!   batches — each answered with exactly one framed
//!   [`Response`](authdb_core::wire::Response).
//! * [`QsClient`] — a blocking client whose decoded answers feed straight
//!   into the **existing** `Verifier` (`verify_sharded_selection` /
//!   `verify_projection`). The verifier is not weakened or forked for the
//!   network path: the client performs *no* trust decisions of its own —
//!   it only decodes, and decoding failures are typed [`WireError`]s.
//!   [`QsClient::pipeline_select`] multiplexes a batch of selections over
//!   one connection, matching responses to requests by echoed id.
//! * [`WireTamper`] — the byte-level arm of the adversary catalog: frame
//!   corruptions a malicious server (or the network) can apply, each pinned
//!   to the typed error it must surface as. A server handle can be armed
//!   with one to play the adversary in integration tests.
//!
//! A peer speaking garbage can at worst make the other side drop the
//! connection: frames are length-capped before allocation, decoding is
//! panic-free, and a request the server cannot decode closes the stream
//! (once framing is lost there is no way to resynchronize, and answering
//! unparseable bytes would mean guessing what was asked).
//!
//! # Concurrency architecture
//!
//! Four pieces compose so that the server reshapes itself under live
//! traffic without a server-wide lock anywhere on the answer path:
//!
//! 1. **Per-shard snapshots** (`authdb_core::shard`). Readers pin an
//!    immutable epoch snapshot (`Arc`) and build proofs against it; the
//!    DA-side writer applies updates under per-shard 2PL and publishes a
//!    certified rebalance by swapping the snapshot pointer once. A query
//!    that straddles a swap restarts against the new epoch — honest
//!    answers are never rejected, and every proof is single-epoch.
//! 2. **Connection multiplexing** (`Request::Tagged`). A client pipelines
//!    a batch of id-tagged requests on one connection and matches the
//!    echoed ids; the event loop answers them in arrival order. On a
//!    single connection this amortizes round-trips and syscalls — the
//!    `fig_conc` bench measures the aggregate-throughput win.
//! 3. **Write backpressure**. Per-connection and global caps on queued
//!    response bytes: an over-cap connection is not read (TCP pushes back)
//!    and over-cap requests shed as `Response::Busy` →
//!    [`NetError::Overloaded`] — typed, retryable, and never a silent
//!    drop. Shed requests were never answered, so soundness is untouched.
//! 4. **Load-driven auto-rebalance** (`authdb_core::policy`). A DA-side
//!    driver polls per-shard stats over the wire, feeds them to an
//!    `AutoRebalancer`, and pushes the certified split/merge packages it
//!    proposes through the same `Rebalance` channel — the deployment
//!    follows its hotspots while queries keep verifying.
//!
//! # Failure model
//!
//! Real networks fault; the paper's soundness promise must survive them
//! without ever being *weakened* by them. Every fault the client stack can
//! encounter maps to a typed detection, a prescribed client action, and a
//! verdict — the [`ChaosProxy`] fault-injection catalog
//! ([`netfault::run_netfault_catalog`]) pins each row:
//!
//! | fault | detection | client action | verdict |
//! |---|---|---|---|
//! | endpoint down / connect refused | connect error ([`NetError::Io`]) | retry with backoff, then report the endpoint unreachable | none — no answer was accepted |
//! | accept-then-stall (slow or dead server) | read deadline fires ([`NetError::Timeout`]) | bounded retry, then unreachable | none — the client never hangs past its deadline budget |
//! | delay within deadline | none (slower RTT) | accept | unchanged — latency is not evidence |
//! | disconnect mid-frame | short read ([`NetError::Io`], `UnexpectedEof`) | retry (idempotent requests only) | none until a complete frame verifies |
//! | truncated / bit-corrupted frame | [`NetError::Wire`] typed decode error | **fail fast — never retried blindly**: corruption of a length-checked frame is evidence of tampering, not weather | none; the error is surfaced |
//! | per-shard partition | per-endpoint retries exhausted | degrade: return a [`PartialAnswer`] naming the unreachable shards | `verify_partial_selection` certifies the reachable tiles, marks the rest `ShardUnavailable` |
//! | reachable shard withholds its part | verifier | none available | `VerifyError::ShardWithheld` — degradation never excuses withholding |
//! | server refusal ([`NetError::Refused`]) | typed response | fail fast (the server answered; retrying cannot change a deterministic refusal) | none |
//! | server overloaded ([`NetError::Overloaded`]) | typed `Busy` response | retry with backoff — the shed is about load, not content | none — the request was never answered |
//!
//! Retries are restricted to **idempotent** requests (selections, stats,
//! epoch, ping); `Rebalance` is never retried — [`ResilientClient`] simply
//! does not expose it, so the type system enforces the restriction.

pub mod autobalance;
pub mod client;
pub mod fanout;
pub mod fault;
pub mod netfault;
pub mod retry;
pub mod server;
pub mod tamper;

pub use autobalance::{AutoRebalanceDriver, AutoRebalanceError};
pub use client::QsClient;
pub use fanout::{PartialAnswer, ShardFanout, ShardOutage};
pub use fault::{ChaosProxy, Fault, FaultPlan};
pub use netfault::{run_netfault_catalog, NetFault, NetFaultConformance};
pub use retry::{ClientConfig, ResilientClient, RetryPolicy};
pub use server::{QsServer, QsServerOptions};
pub use tamper::WireTamper;

use std::fmt;
use std::io::Read;

use authdb_core::qs::QueryError;
use authdb_wire::WireError;

/// Why a network operation failed. The taxonomy is the client's retry
/// policy: [`NetError::is_retryable`] splits transient transport faults
/// (worth another attempt) from integrity faults (evidence — fail fast).
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read, write, EOF mid-frame). Retryable:
    /// a reset or short read says nothing about the answer's content.
    Io(std::io::Error),
    /// A configured deadline fired (connect, read, or write). Retryable —
    /// and the reason the client can never hang: every blocking operation
    /// is bounded.
    Timeout(&'static str),
    /// The peer's bytes failed canonical decoding. **Not** retryable: a
    /// frame that passed the length gate but failed decoding is corrupt in
    /// a way retransmission-protected TCP does not produce — treat it as
    /// tampering evidence and surface it.
    Wire(WireError),
    /// The server refused the request with its own typed error. Not
    /// retryable: the server is alive and deterministic.
    Refused(QueryError),
    /// The server shed the request under load (`Response::Busy`) without
    /// doing any proof work. Retryable: the shed is a statement about the
    /// server's queues at one moment, not about the request — backing off
    /// and re-asking is exactly what the backpressure design expects.
    Overloaded,
    /// The server answered with a well-formed but wrong-kinded response
    /// (e.g. a projection to a selection request). Not retryable.
    Protocol(&'static str),
}

impl NetError {
    /// Whether a fresh attempt could plausibly succeed. The transport
    /// faults qualify, and so does a load shed — an overloaded server asked
    /// to be re-asked later. Wire corruption, refusals, and protocol
    /// violations are answers *about* the server and retrying them blindly
    /// would only re-solicit the evidence.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            NetError::Io(_) | NetError::Timeout(_) | NetError::Overloaded
        )
    }

    /// Classify an I/O error raised during `during`: deadline expiries
    /// become [`NetError::Timeout`], everything else stays [`NetError::Io`].
    /// (Platform sockets report a fired `SO_RCVTIMEO`/`SO_SNDTIMEO` as
    /// `WouldBlock` or `TimedOut` depending on the OS.)
    pub fn from_io(e: std::io::Error, during: &'static str) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                NetError::Timeout(during)
            }
            _ => NetError::Io(e),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Timeout(during) => write!(f, "deadline expired during {during}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Refused(e) => write!(f, "server refused: {e}"),
            NetError::Overloaded => write!(f, "server overloaded: request shed, retry later"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::from_io(e, "transport")
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// Read one frame body (version byte + payload) from a stream. The header's
/// declared length is checked against `max` **before** the body buffer is
/// allocated, so a lying prefix cannot reserve memory.
pub(crate) fn read_frame_body(stream: &mut impl Read, max: usize) -> Result<Vec<u8>, NetError> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let body_len = authdb_wire::frame_body_len(header, max)?;
    let mut body = vec![0u8; body_len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_classification_pins_timeout_vs_io() {
        // Fired socket deadlines surface as Timeout regardless of how the
        // platform spells them; everything else stays a transport Io fault.
        for kind in [std::io::ErrorKind::TimedOut, std::io::ErrorKind::WouldBlock] {
            let e = NetError::from_io(std::io::Error::from(kind), "read");
            assert!(matches!(e, NetError::Timeout("read")), "{kind:?}: {e}");
        }
        let reset = std::io::Error::from(std::io::ErrorKind::ConnectionReset);
        assert!(matches!(NetError::from_io(reset, "read"), NetError::Io(_)));
    }

    #[test]
    fn retry_taxonomy_splits_transport_from_evidence() {
        // The retry policy IS the taxonomy: transport faults retry,
        // integrity faults (wire corruption, refusals, wrong-kinded
        // responses) are evidence and must fail fast.
        let io = NetError::from(std::io::Error::from(std::io::ErrorKind::BrokenPipe));
        assert!(io.is_retryable());
        assert!(NetError::Timeout("connect").is_retryable());
        // A load shed is an invitation to come back, not evidence: the
        // resilient client backs off and re-asks.
        assert!(NetError::Overloaded.is_retryable());
        assert!(!NetError::Wire(WireError::Truncated).is_retryable());
        assert!(!NetError::Refused(QueryError::Unsupported).is_retryable());
        assert!(!NetError::Protocol("projection answer to a selection").is_retryable());
    }
}
