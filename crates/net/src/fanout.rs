//! Per-shard fan-out with sound partial-answer degradation.
//!
//! A single [`QsClient`](crate::QsClient) talking to a single endpoint is
//! all-or-nothing: one partitioned shard takes the whole answer down.
//! [`ShardFanout`] instead queries each shard's endpoint independently
//! (through [`ResilientClient`]s, so each endpoint gets its own deadline
//! and retry budget) and degrades *soundly* when some shards are dark:
//!
//! * The sub-range each shard is asked for comes from the fanout's
//!   **pinned map** — never from the servers — so no endpoint can shrink
//!   its own responsibility.
//! * A shard that exhausts its retries on *transport* faults is recorded
//!   as a [`ShardOutage`] with its typed error. That outage list is the
//!   client's own evidence, and it is exactly what
//!   `Verifier::verify_partial_selection` consumes as the `unreachable`
//!   set: the verifier certifies every reachable tile and marks only the
//!   listed shards `ShardUnavailable`.
//! * An **integrity** fault on any shard (wire corruption, refusal,
//!   protocol violation) fails the whole fan-out. Degradation is for
//!   weather, not for tampering — folding a corrupt shard into "partial"
//!   would launder evidence into unavailability.
//!
//! The asymmetry this preserves is the tentpole invariant: a shard the
//! client *could* reach but whose part is missing from the answer is
//! `ShardWithheld` (a verification failure), while only shards the client
//! itself failed to reach become `ShardUnavailable` (a certified partial
//! answer). A malicious publisher cannot convert withholding into an
//! innocent-looking outage, because the outage list never passes through
//! its hands.

use authdb_core::shard::{ShardAnswer, ShardMap, ShardedSelectionAnswer};

use crate::retry::{ClientConfig, ResilientClient};
use crate::NetError;

/// One shard the fan-out could not reach, with the final typed transport
/// error (always retryable-class — integrity faults abort the fan-out
/// instead of landing here).
#[derive(Debug)]
pub struct ShardOutage {
    /// The unreachable shard's index.
    pub shard: usize,
    /// The transport error its last attempt surfaced.
    pub error: NetError,
}

/// A fan-out result: the stitched multi-shard answer for every shard that
/// responded, plus the client's own record of which shards were dark.
#[derive(Debug)]
pub struct PartialAnswer {
    /// Parts from every reachable shard, in shard order, under the pinned
    /// map — directly consumable by `verify_partial_selection`.
    pub answer: ShardedSelectionAnswer,
    /// Shards that exhausted their retry budget, with the final errors.
    pub outages: Vec<ShardOutage>,
}

impl PartialAnswer {
    /// Whether every overlapping shard answered (the fault-free case; the
    /// answer then also satisfies the ordinary full verifier).
    pub fn is_complete(&self) -> bool {
        self.outages.is_empty()
    }

    /// The unreachable shard indices — the `unreachable` argument for
    /// `Verifier::verify_partial_selection`.
    pub fn unreachable(&self) -> Vec<usize> {
        self.outages.iter().map(|o| o.shard).collect()
    }
}

/// A resilient multi-endpoint selection client: shard `i` of the pinned
/// map is served by `endpoints[i]`.
pub struct ShardFanout {
    map: ShardMap,
    endpoints: Vec<String>,
    config: ClientConfig,
    attempts: u64,
}

impl ShardFanout {
    /// Fan out over `endpoints` under the client's pinned `map` (obtained
    /// and epoch-verified out of band — e.g. via `EpochView::observe`).
    ///
    /// # Panics
    ///
    /// If the endpoint list does not cover the map's shards one-to-one.
    pub fn new(map: ShardMap, endpoints: Vec<String>, config: ClientConfig) -> Self {
        assert_eq!(
            endpoints.len(),
            map.shard_count(),
            "one endpoint per shard of the pinned map"
        );
        ShardFanout {
            map,
            endpoints,
            config,
            attempts: 0,
        }
    }

    /// The pinned map the fan-out routes by.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Total connection attempts across all shards and queries — the
    /// retry-amplification numerator.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Select `lo..=hi`, querying each overlapping shard independently.
    ///
    /// Returns `Ok` with a (possibly partial) answer when every fault
    /// encountered was transport-class; returns `Err` on the first
    /// integrity fault — a corrupt or refusing shard poisons the whole
    /// answer rather than hiding among outages.
    pub fn select_range(&mut self, lo: i64, hi: i64) -> Result<PartialAnswer, NetError> {
        let mut parts = Vec::new();
        let mut outages = Vec::new();
        for (shard, (sub_lo, sub_hi)) in self.map.overlapping(lo, hi) {
            // Per-shard jitter seed: decorrelate shard retries while
            // keeping the whole fan-out reproducible from one config.
            let mut config = self.config.clone();
            config.retry.jitter_seed = config
                .retry
                .jitter_seed
                .wrapping_add((shard as u64).wrapping_mul(0x9e37_79b9));
            let mut client = ResilientClient::new(self.endpoints[shard].clone(), config);
            let result = client.select_shard(shard, sub_lo, sub_hi);
            self.attempts += client.attempts();
            match result {
                Ok(answer) => parts.push(ShardAnswer { shard, answer }),
                Err(e) if e.is_retryable() => outages.push(ShardOutage { shard, error: e }),
                Err(e) => return Err(e),
            }
        }
        Ok(PartialAnswer {
            answer: ShardedSelectionAnswer {
                map: self.map.clone(),
                parts,
            },
            outages,
        })
    }
}
