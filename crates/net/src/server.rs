//! The blocking TCP query server.
//!
//! [`QsServer::spawn`] wraps a bootstrapped
//! [`ShardedQueryServer`] in a listener and serves each connection on its
//! own thread. The handle keeps shared access to the underlying server so
//! the DA-side driver can keep pushing update messages and summaries while
//! queries are being answered — exactly the Section 3.1 deployment, where
//! fresh data dissemination is decoupled from query traffic.
//!
//! Proof construction runs under one server-wide lock (the fan-out mutates
//! per-shard caches and stats); the thread-per-connection model therefore
//! parallelizes transport and decoding but serializes answer construction.
//! The async/epoll follow-on in the ROADMAP lifts that.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use authdb_core::qs::QueryError;
use authdb_core::shard::ShardedQueryServer;
use authdb_core::wire::{Request, Response};
use authdb_wire::{deframe, frame, try_frame, DEFAULT_MAX_FRAME_LEN};

use crate::tamper::WireTamper;
use crate::{read_frame_body, NetError};

/// Construction options for [`QsServer::spawn`].
#[derive(Clone, Copy, Debug)]
pub struct QsServerOptions {
    /// Cap on an *incoming* request frame's declared body length. Requests
    /// are tiny; the default (64 KiB) bounds what a hostile client's length
    /// prefix can make the server allocate.
    pub max_request_len: usize,
    /// Per-`read` deadline on accepted sockets. Before this existed, a
    /// client that connected and then went silent pinned its connection
    /// thread forever — the slow-loris hole. A connection idle past the
    /// deadline is dropped; honest clients re-connect.
    pub read_timeout: Duration,
    /// Per-`write` deadline on accepted sockets: a client that stops
    /// draining its receive window cannot wedge a response write.
    pub write_timeout: Duration,
    /// Cap on concurrently served connections. With thread-per-connection,
    /// unbounded accepts are an fd- and memory-exhaustion vector; excess
    /// connections are closed at accept (clients observe a reset and
    /// retry against a less-loaded moment).
    pub max_connections: usize,
    /// How long [`QsServer::shutdown`] waits for in-flight connections to
    /// finish before returning anyway.
    pub drain_timeout: Duration,
}

impl Default for QsServerOptions {
    fn default() -> Self {
        QsServerOptions {
            max_request_len: 64 << 10,
            // Generous defaults: long enough that no honest interactive
            // client notices, short enough that an abandoned socket frees
            // its thread the same minute.
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_connections: 256,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

struct Shared {
    server: Mutex<ShardedQueryServer>,
    /// Outbound frame corruption for adversarial tests (None = honest).
    tamper: Mutex<Option<WireTamper>>,
    opts: QsServerOptions,
    stop: AtomicBool,
    /// Connections currently being served (the cap's ledger, and what
    /// shutdown drains to zero).
    active: AtomicUsize,
}

/// A running networked query server. Dropping the handle stops the accept
/// loop; established connections wind down when their clients disconnect.
pub struct QsServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl QsServer {
    /// Serve `server` on a loopback port chosen by the OS. Returns once the
    /// listener is bound, with the accept loop running in the background.
    pub fn spawn(server: ShardedQueryServer, opts: QsServerOptions) -> Result<Self, NetError> {
        Self::bind(server, "127.0.0.1:0", opts)
    }

    /// Serve `server` on an explicit bind address.
    pub fn bind(
        server: ShardedQueryServer,
        bind_addr: &str,
        opts: QsServerOptions,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            server: Mutex::new(server),
            tamper: Mutex::new(None),
            opts,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Admission control: claim a slot before spawning; if the
                // cap is hit, drop the socket instead of the server.
                let claimed = accept_shared.active.fetch_add(1, Ordering::AcqRel);
                if claimed >= accept_shared.opts.max_connections {
                    accept_shared.active.fetch_sub(1, Ordering::AcqRel);
                    drop(stream);
                    continue;
                }
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    handle_connection(stream, Arc::clone(&conn_shared));
                    conn_shared.active.fetch_sub(1, Ordering::AcqRel);
                });
            }
        });
        Ok(QsServer {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Run `f` against the underlying sharded server — the DA-side path for
    /// applying update messages and publishing summaries while serving.
    pub fn with_server<R>(&self, f: impl FnOnce(&mut ShardedQueryServer) -> R) -> R {
        f(&mut self.shared.server.lock())
    }

    /// Arm (or disarm) outbound frame corruption. Test-only adversarial
    /// control: the server keeps constructing honest answers, then mangles
    /// the bytes on their way out.
    pub fn set_tamper(&self, tamper: Option<WireTamper>) {
        *self.shared.tamper.lock() = tamper;
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop accepting, then wait (up to the configured
    /// drain timeout) for in-flight connections to finish their current
    /// request/response exchanges. Connections still open after the drain
    /// window are abandoned — their threads die at their next read
    /// deadline, so nothing leaks unboundedly either way.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        let deadline = std::time::Instant::now() + self.shared.opts.drain_timeout;
        while self.shared.active.load(Ordering::Acquire) > 0 && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn stop_accepting(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for QsServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_accepting();
        }
    }
}

/// Serve one connection: framed request in, framed response out, until the
/// client disconnects or sends bytes that do not decode (after which the
/// stream cannot be resynchronized and is dropped).
fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // Deadlines on every blocking socket operation: a client that
    // connects and stalls (or stops draining responses) costs one thread
    // for at most a deadline, not forever.
    let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
    loop {
        let body = match read_frame_body(&mut stream, shared.opts.max_request_len) {
            Ok(b) => b,
            Err(_) => return,
        };
        let request: Request = match deframe(&body) {
            Ok(r) => r,
            Err(_) => return,
        };
        let response = {
            let mut server = shared.server.lock();
            dispatch(&mut server, request)
        };
        // Writer-side frame cap: an answer too large for any client's
        // default reader cap (or the u32 length prefix itself) becomes a
        // typed refusal instead of a frame the peer must reject.
        let mut bytes = match try_frame(&response, DEFAULT_MAX_FRAME_LEN) {
            Ok(b) => b,
            Err(_) => frame(&Response::Refused(QueryError::AnswerTooLarge)),
        };
        if let Some(t) = *shared.tamper.lock() {
            t.apply(&mut bytes);
        }
        if std::io::Write::write_all(&mut stream, &bytes).is_err() {
            return;
        }
    }
}

/// Map one request onto the sharded server. Server-side refusals travel as
/// [`Response::Refused`]; nothing here panics on hostile input (the codec
/// already rejected malformed frames, `project` bounds attribute indices
/// itself, and `apply_rebalance` validates the package's shape before
/// touching any state).
fn dispatch(server: &mut ShardedQueryServer, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Select { lo, hi } => match server.select_range(lo, hi) {
            Ok(answer) => Response::Selection(answer),
            Err(e) => Response::Refused(e),
        },
        Request::SelectShard { shard, lo, hi } => {
            match server.select_shard(shard as usize, lo, hi) {
                Ok(answer) => Response::ShardSelection(Box::new(answer)),
                Err(e) => Response::Refused(e),
            }
        }
        Request::Project { lo, hi, attrs } => {
            let attrs: Vec<usize> = attrs.into_iter().map(|a| a as usize).collect();
            match server.project(lo, hi, &attrs) {
                Ok(answer) => Response::Projection(answer),
                Err(e) => Response::Refused(e),
            }
        }
        Request::Stats => Response::Stats(server.stats()),
        Request::Epoch => Response::Epoch {
            map: server.map().clone(),
            transitions: server.transitions().to_vec(),
        },
        Request::Rebalance(rb) => match server.apply_rebalance(&rb) {
            Ok(()) => Response::Rebalanced,
            Err(e) => Response::Refused(e),
        },
    }
}
