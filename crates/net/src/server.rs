//! The event-loop TCP query server.
//!
//! [`QsServer::spawn`] wraps a bootstrapped [`ShardedQueryServer`] in a
//! single-threaded readiness loop over non-blocking sockets: one thread
//! accepts, reads, dispatches, and writes for every connection. The handle
//! keeps shared access to the underlying server so the DA-side driver can
//! keep pushing update messages and summaries while queries are being
//! answered — exactly the Section 3.1 deployment, where fresh data
//! dissemination is decoupled from query traffic.
//!
//! The old thread-per-connection server serialized proof construction under
//! one server-wide mutex; this one holds **no** lock around dispatch. The
//! [`ShardedQueryServer`] is snapshot-concurrent (readers pin an immutable
//! epoch snapshot; writers publish by swapping it), so every request is
//! answered against `&ShardedQueryServer` directly.
//!
//! # Multiplexing and backpressure
//!
//! Connections carry either classic one-request/one-response exchanges or
//! pipelined [`Request::Tagged`] frames: a client may write a whole batch
//! before reading, and the loop answers each frame in arrival order with
//! the request's id echoed, so responses can be matched without counting.
//!
//! Two byte caps bound what a slow or hostile reader can pin:
//!
//! * **Per-connection** ([`QsServerOptions::max_conn_queue`]): while a
//!   connection's queued-but-unwritten response bytes exceed the cap, its
//!   socket is not read (TCP pushes back on the sender) and any requests
//!   already buffered are answered with [`Response::Busy`] instead of
//!   being dispatched — a typed, retryable shed, never a silent drop.
//! * **Global** ([`QsServerOptions::max_queued_bytes`]): when the sum of
//!   all queues exceeds this, newly parsed requests shed as `Busy`
//!   regardless of which connection they arrived on.
//!
//! Clients surface `Busy` as `NetError::Overloaded`, which
//! [`is_retryable`](crate::NetError::is_retryable) admits — the resilient
//! client backs off and re-asks, and soundness is untouched because a shed
//! request was never answered at all.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use authdb_core::qs::QueryError;
use authdb_core::shard::ShardedQueryServer;
use authdb_core::wire::{Request, Response};
use authdb_wire::{deframe, frame, frame_body_len, try_frame, DEFAULT_MAX_FRAME_LEN};

use crate::tamper::WireTamper;
use crate::NetError;

/// How long the loop sleeps when a full pass made no progress — the
/// latency floor for a quiescent server, and the price of portability
/// (no `epoll` without unsafe bindings; `forbid(unsafe_code)` holds).
const IDLE_TICK: Duration = Duration::from_micros(500);

/// Per-pass read burst cap: one connection blasting requests cannot keep
/// the loop in its read syscall forever while the other connections starve.
const READ_BURST: usize = 64 << 10;

/// Construction options for [`QsServer::spawn`].
#[derive(Clone, Copy, Debug)]
pub struct QsServerOptions {
    /// Cap on an *incoming* request frame's declared body length. Requests
    /// are tiny; the default (64 KiB) bounds what a hostile client's length
    /// prefix can make the server allocate.
    pub max_request_len: usize,
    /// Idle deadline per connection: a connection with no read or write
    /// progress for this long is dropped (the slow-loris guard). Honest
    /// clients re-connect.
    pub read_timeout: Duration,
    /// Write-stall deadline: a client that stops draining its receive
    /// window while responses are queued is dropped after this long
    /// without a single accepted byte.
    pub write_timeout: Duration,
    /// Cap on concurrently served connections. Excess connections are
    /// closed at accept (clients observe a reset and retry against a
    /// less-loaded moment).
    pub max_connections: usize,
    /// How long [`QsServer::shutdown`] waits for queued responses to
    /// drain before returning anyway.
    pub drain_timeout: Duration,
    /// Per-connection cap on queued-but-unwritten response bytes. Above
    /// it, the connection's socket is not read and buffered requests are
    /// answered with [`Response::Busy`].
    pub max_conn_queue: usize,
    /// Global cap on queued response bytes across all connections; above
    /// it, newly parsed requests shed as [`Response::Busy`].
    pub max_queued_bytes: usize,
}

impl Default for QsServerOptions {
    fn default() -> Self {
        QsServerOptions {
            max_request_len: 64 << 10,
            // Generous defaults: long enough that no honest interactive
            // client notices, short enough that an abandoned socket frees
            // its slot the same minute.
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_connections: 256,
            drain_timeout: Duration::from_secs(5),
            max_conn_queue: 4 << 20,
            max_queued_bytes: 32 << 20,
        }
    }
}

struct Shared {
    server: ShardedQueryServer,
    /// Outbound frame corruption for adversarial tests (None = honest).
    tamper: Mutex<Option<WireTamper>>,
    opts: QsServerOptions,
    stop: AtomicBool,
    /// Connections currently being served (mirrors the loop's ledger so
    /// the handle can observe it without touching loop state).
    active: AtomicUsize,
    /// Set by the event loop once every queued response is flushed (or the
    /// drain window expires) after `stop`; [`QsServer::shutdown`] waits on
    /// the condvar instead of sleep-polling.
    drained: Mutex<bool>,
    drain_cv: Condvar,
}

/// A running networked query server. Dropping the handle stops the event
/// loop; queued responses get one drain pass before the sockets close.
pub struct QsServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
}

impl QsServer {
    /// Serve `server` on a loopback port chosen by the OS. Returns once the
    /// listener is bound, with the event loop running in the background.
    pub fn spawn(server: ShardedQueryServer, opts: QsServerOptions) -> Result<Self, NetError> {
        Self::bind(server, "127.0.0.1:0", opts)
    }

    /// Serve `server` on an explicit bind address.
    pub fn bind(
        server: ShardedQueryServer,
        bind_addr: &str,
        opts: QsServerOptions,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(bind_addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            server,
            tamper: Mutex::new(None),
            opts,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            drained: Mutex::new(false),
            drain_cv: Condvar::new(),
        });
        let loop_shared = Arc::clone(&shared);
        let event_loop = std::thread::spawn(move || event_loop(listener, loop_shared));
        Ok(QsServer {
            addr,
            shared,
            event_loop: Some(event_loop),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Run `f` against the underlying sharded server — the DA-side path for
    /// applying update messages, summaries, and rebalances while serving.
    /// No lock is taken: the sharded server is snapshot-concurrent, so this
    /// runs alongside in-flight request dispatch.
    pub fn with_server<R>(&self, f: impl FnOnce(&ShardedQueryServer) -> R) -> R {
        f(&self.shared.server)
    }

    /// Arm (or disarm) outbound frame corruption. Test-only adversarial
    /// control: the server keeps constructing honest answers, then mangles
    /// the bytes on their way out.
    pub fn set_tamper(&self, tamper: Option<WireTamper>) {
        *self.shared.tamper.lock() = tamper;
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop accepting and reading, flush queued
    /// responses (up to the configured drain timeout), then return. The
    /// wait is condvar-based — the event loop signals the drain's
    /// completion, so shutdown wakes exactly when the last byte is flushed
    /// instead of discovering it on a poll tick.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Margin on top of the drain window: the loop itself enforces the
        // timeout; the margin only covers its last bookkeeping pass.
        let deadline = Instant::now() + self.shared.opts.drain_timeout + Duration::from_millis(250);
        {
            let mut drained = self.shared.drained.lock();
            while !*drained {
                if self
                    .shared
                    .drain_cv
                    .wait_until(&mut drained, deadline)
                    .timed_out()
                {
                    break;
                }
            }
        }
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
    }
}

impl Drop for QsServer {
    fn drop(&mut self) {
        if let Some(h) = self.event_loop.take() {
            self.shared.stop.store(true, Ordering::Release);
            let _ = h.join();
        }
    }
}

/// One connection's loop state: a non-blocking socket, the bytes read but
/// not yet parsed, and the response bytes queued but not yet accepted by
/// the kernel.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Prefix of `wbuf` already written.
    wpos: usize,
    last_activity: Instant,
    /// When the current write stall began (queued bytes, zero progress).
    stalled_since: Option<Instant>,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            last_activity: Instant::now(),
            stalled_since: None,
            dead: false,
        }
    }

    /// Queued-but-unwritten response bytes — the backpressure measure.
    fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Push queued bytes at the socket until it would block.
    fn flush(&mut self, opts: &QsServerOptions) -> bool {
        if self.dead || self.backlog() == 0 {
            return false;
        }
        let mut progress = false;
        loop {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return progress;
                }
                Ok(n) => {
                    self.wpos += n;
                    progress = true;
                    if self.wpos == self.wbuf.len() {
                        self.wbuf.clear();
                        self.wpos = 0;
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return progress;
                }
            }
        }
        if progress {
            self.stalled_since = None;
            self.last_activity = Instant::now();
        } else if self.backlog() > 0 {
            // A peer that stops draining its window cannot pin its queue
            // forever: the stall clock starts at the first zero-progress
            // flush and the connection dies at the write deadline.
            let since = *self.stalled_since.get_or_insert_with(Instant::now);
            if since.elapsed() > opts.write_timeout {
                self.dead = true;
            }
        }
        progress
    }

    /// Read available bytes, respecting the per-connection backpressure
    /// cap and the per-pass burst cap.
    fn fill(&mut self, opts: &QsServerOptions) -> bool {
        if self.dead || self.backlog() > opts.max_conn_queue {
            return false;
        }
        let mut progress = false;
        let mut chunk = [0u8; 4096];
        loop {
            if self.rbuf.len() >= READ_BURST {
                break;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Parse complete frames out of the read buffer and answer each. A
    /// frame that fails the length gate or canonical decoding kills the
    /// connection — once framing is lost there is no resynchronizing, and
    /// answering unparseable bytes would mean guessing what was asked.
    fn serve(&mut self, shared: &Shared, global_backlog: &mut usize) -> bool {
        let mut progress = false;
        while !self.dead {
            if self.rbuf.len() < 4 {
                break;
            }
            let header = [self.rbuf[0], self.rbuf[1], self.rbuf[2], self.rbuf[3]];
            let body_len = match frame_body_len(header, shared.opts.max_request_len) {
                Ok(l) => l,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            };
            if self.rbuf.len() < 4 + body_len {
                break;
            }
            let body: Vec<u8> = self.rbuf[4..4 + body_len].to_vec();
            self.rbuf.drain(..4 + body_len);
            let request: Request = match deframe(&body) {
                Ok(r) => r,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            };
            // Load shedding is decided per request, *before* any proof
            // work: a shed request costs the server a handful of bytes.
            let overloaded = self.backlog() > shared.opts.max_conn_queue
                || *global_backlog > shared.opts.max_queued_bytes;
            let response = if overloaded {
                busy_response(&request)
            } else {
                dispatch(&shared.server, request)
            };
            let mut bytes = encode_response(response);
            if let Some(t) = *shared.tamper.lock() {
                t.apply(&mut bytes);
            }
            *global_backlog += bytes.len();
            self.wbuf.extend_from_slice(&bytes);
            progress = true;
        }
        progress
    }
}

/// The readiness loop: accept, flush, read, serve, repeat — one thread for
/// every connection, no blocking syscalls, a short sleep only when a full
/// pass made no progress.
fn event_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let mut progress = false;

        // Admission control at accept: over the cap, the socket is closed
        // unserved (clients observe a reset and retry).
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if conns.len() >= shared.opts.max_connections
                        || stream.set_nonblocking(true).is_err()
                    {
                        drop(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        let mut global_backlog: usize = conns.iter().map(Conn::backlog).sum();
        for conn in &mut conns {
            let queued = conn.backlog();
            progress |= conn.flush(&shared.opts);
            global_backlog -= queued - conn.backlog();
            progress |= conn.fill(&shared.opts);
            progress |= conn.serve(&shared, &mut global_backlog);
            // Answer-then-flush in the same pass: a request's response
            // hits the socket before the loop sleeps.
            let queued = conn.backlog();
            conn.flush(&shared.opts);
            global_backlog -= queued - conn.backlog();
            if conn.last_activity.elapsed() > shared.opts.read_timeout {
                conn.dead = true;
            }
        }
        conns.retain(|c| !c.dead);
        shared.active.store(conns.len(), Ordering::Release);

        if !progress {
            std::thread::sleep(IDLE_TICK);
        }
    }

    // Drain: flush what is queued (bounded by the drain window), then
    // close everything and signal the condvar shutdown waits on.
    let deadline = Instant::now() + shared.opts.drain_timeout;
    while conns.iter().any(|c| !c.dead && c.backlog() > 0) && Instant::now() < deadline {
        let mut progress = false;
        for conn in &mut conns {
            progress |= conn.flush(&shared.opts);
        }
        conns.retain(|c| !c.dead && c.backlog() > 0);
        if !progress {
            std::thread::sleep(IDLE_TICK);
        }
    }
    drop(conns);
    shared.active.store(0, Ordering::Release);
    *shared.drained.lock() = true;
    shared.drain_cv.notify_all();
}

/// The typed shed for an overloaded moment: tagged requests keep their id
/// (so a pipelined client attributes the rejection to the right request),
/// everything else gets a bare [`Response::Busy`].
fn busy_response(request: &Request) -> Response {
    match request {
        Request::Tagged { id, .. } => Response::Tagged {
            id: *id,
            inner: Box::new(Response::Busy),
        },
        _ => Response::Busy,
    }
}

/// Writer-side frame cap: an answer too large for any client's default
/// reader cap (or the u32 length prefix itself) becomes a typed refusal
/// instead of a frame the peer must reject — with the request id kept on
/// the tagged path.
fn encode_response(response: Response) -> Vec<u8> {
    match try_frame(&response, DEFAULT_MAX_FRAME_LEN) {
        Ok(b) => b,
        Err(_) => match response {
            Response::Tagged { id, .. } => frame(&Response::Tagged {
                id,
                inner: Box::new(Response::Refused(QueryError::AnswerTooLarge)),
            }),
            _ => frame(&Response::Refused(QueryError::AnswerTooLarge)),
        },
    }
}

/// Map one request onto the sharded server. Server-side refusals travel as
/// [`Response::Refused`]; nothing here panics on hostile input (the codec
/// already rejected malformed frames, `project` bounds attribute indices
/// itself, and `apply_rebalance` validates the package's shape before
/// touching any state). Dispatch takes `&ShardedQueryServer` — queries run
/// against an epoch snapshot and writers order themselves, so the event
/// loop holds no lock here.
fn dispatch(server: &ShardedQueryServer, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Select { lo, hi } => match server.select_range(lo, hi) {
            Ok(answer) => Response::Selection(answer),
            Err(e) => Response::Refused(e),
        },
        Request::SelectShard { shard, lo, hi } => {
            match server.select_shard(shard as usize, lo, hi) {
                Ok(answer) => Response::ShardSelection(Box::new(answer)),
                Err(e) => Response::Refused(e),
            }
        }
        Request::Project { lo, hi, attrs } => {
            let attrs: Vec<usize> = attrs.into_iter().map(|a| a as usize).collect();
            match server.project(lo, hi, &attrs) {
                Ok(answer) => Response::Projection(answer),
                Err(e) => Response::Refused(e),
            }
        }
        Request::Stats => Response::Stats(server.stats()),
        Request::ShardStats => Response::ShardStats(server.shard_stats()),
        Request::Epoch => Response::Epoch {
            map: server.map(),
            transitions: server.transitions(),
        },
        Request::Checkpoint => Response::Checkpoint(Box::new(server.epoch_bootstrap())),
        Request::Rebalance(rb) => match server.apply_rebalance(&rb) {
            Ok(()) => Response::Rebalanced,
            Err(e) => Response::Refused(e),
        },
        Request::Tagged { id, inner } => {
            // The codec already rejects nested wrappers; this arm keeps
            // the refusal typed for in-process callers too.
            let inner = match *inner {
                Request::Tagged { .. } => Response::Refused(QueryError::Unsupported),
                other => dispatch(server, other),
            };
            Response::Tagged {
                id,
                inner: Box::new(inner),
            }
        }
    }
}
