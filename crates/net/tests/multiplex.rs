//! Connection multiplexing and write backpressure, pinned at the wire:
//! a pipelined `Request::Tagged` batch is answer-for-answer identical to
//! classic sequential exchanges, per-shard telemetry crosses the wire
//! unchanged, and a server out of queue budget sheds with a typed `Busy`
//! (→ [`NetError::Overloaded`]) instead of dropping or blocking.

use rand::rngs::StdRng;
use rand::SeedableRng;

use authdb_core::da::{DaConfig, SigningMode};
use authdb_core::qs::QsOptions;
use authdb_core::record::Schema;
use authdb_core::shard::{ShardedAggregator, ShardedQueryServer};
use authdb_core::verify::{EpochView, Verifier};
use authdb_crypto::signer::SchemeKind;
use authdb_net::{NetError, QsClient, QsServer, QsServerOptions};

/// Two shards over keys 0..=990 (seam at 500), served over loopback TCP.
/// Huge ρ keeps update summaries out: the subject here is the transport.
fn serve(opts: QsServerOptions) -> (ShardedAggregator, QsServer, Verifier, EpochView) {
    let cfg = DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        rho: 1_000_000,
        rho_prime: 1_000_000,
        buffer_pages: 256,
        fill: 2.0 / 3.0,
    };
    let mut rng = StdRng::seed_from_u64(11);
    let mut sa = ShardedAggregator::new(cfg, vec![500], &mut rng);
    let boots = sa.bootstrap((0..100).map(|i| vec![i * 10, i]).collect(), 2);
    let sqs = ShardedQueryServer::from_bootstraps(
        sa.public_params(),
        sa.config(),
        sa.map().clone(),
        &boots,
        &QsOptions::default(),
    );
    let verifier = Verifier::new(sa.public_params(), sa.config().schema, sa.config().rho);
    let server = QsServer::spawn(sqs, opts).expect("bind loopback");
    let view = EpochView::genesis(sa.map(), &sa.public_params()).expect("genesis view");
    (sa, server, verifier, view)
}

#[test]
fn pipelined_batch_matches_sequential_answers_and_verifies() {
    let mut rng = StdRng::seed_from_u64(1);
    let (sa, server, verifier, view) = serve(QsServerOptions::default());
    let now = sa.now();
    // Seam-straddling, in-shard, beyond-the-data, and inverted ranges: the
    // whole answer taxonomy rides one multiplexed batch.
    let ranges = [(0, 990), (120, 480), (450, 700), (2000, 3000), (300, 200)];

    let mut client = QsClient::connect(server.addr()).expect("connect");
    let batch = client.pipeline_select(&ranges).expect("pipelined batch");
    assert_eq!(batch.len(), ranges.len());

    let mut seq = QsClient::connect(server.addr()).expect("connect");
    for (&(lo, hi), slot) in ranges.iter().zip(&batch) {
        let ans = slot.as_ref().expect("uncontended batch fully answered");
        // Multiplexing is transparent: each tagged answer is byte-for-byte
        // the answer a classic exchange gets...
        assert_eq!(
            *ans,
            seq.select_range(lo, hi).expect("sequential answer"),
            "[{lo}, {hi}] pipelined vs sequential"
        );
        // ...and the unmodified verifier accepts it.
        verifier
            .verify_sharded_selection(lo, hi, ans, &view, now, true, &mut rng)
            .unwrap_or_else(|e| panic!("[{lo}, {hi}] rejected: {e:?}"));
    }

    // The connection stays usable for classic exchanges afterwards.
    client.ping().expect("plain call after a pipelined batch");
}

#[test]
fn shard_stats_over_the_wire_match_the_handle_and_attribute_load() {
    let (_sa, server, _verifier, _view) = serve(QsServerOptions::default());
    let mut client = QsClient::connect(server.addr()).expect("connect");

    // Skewed traffic: every query lands strictly in the high-key shard.
    for _ in 0..5 {
        client.select_range(600, 900).expect("hot-shard query");
    }

    let wire = client.shard_stats().expect("shard stats over the wire");
    let direct = server.with_server(|sqs| sqs.shard_stats());
    assert_eq!(wire, direct, "telemetry crosses the wire unchanged");
    assert_eq!(wire.len(), 2);
    // Per-shard attribution is what the auto-rebalancer feeds on: the cold
    // shard must not inherit the hot shard's counters.
    assert!(wire[1].queries >= 5, "hot shard counted: {wire:?}");
    assert_eq!(wire[0].queries, 0, "cold shard untouched: {wire:?}");

    // The aggregate view stays the sum of the parts.
    let total = client.stats().expect("aggregate stats");
    assert_eq!(total.queries, wire[0].queries + wire[1].queries);
}

#[test]
fn overload_sheds_with_typed_busy_and_retry_succeeds() {
    // A zero queue budget makes the shed deterministic: the batch arrives
    // in one read, the first request's queued answer exhausts the budget,
    // and every follower in the same pass sheds as Busy.
    let opts = QsServerOptions {
        max_conn_queue: 0,
        ..QsServerOptions::default()
    };
    let (_sa, server, _verifier, _view) = serve(opts);
    let mut client = QsClient::connect(server.addr()).expect("connect");

    let ranges = [(0, 990); 8];
    let batch = client.pipeline_select(&ranges).expect("pipelined batch");
    let ok = batch.iter().filter(|s| s.is_ok()).count();
    let shed = batch
        .iter()
        .filter(|s| matches!(s, Err(NetError::Overloaded)))
        .count();
    assert!(ok >= 1, "the first request is served, not shed");
    assert!(shed >= 1, "a zero-budget queue sheds pipelined followers");
    // Every slot is answered — served or shed, never silently dropped —
    // and a shed is retryable by taxonomy.
    assert_eq!(ok + shed, ranges.len(), "no third outcome: {batch:?}");
    for slot in &batch {
        if let Err(e) = slot {
            assert!(e.is_retryable(), "{e}: sheds invite a retry");
        }
    }

    // The shed was about the queue, not the request: once the queue has
    // drained, the same connection re-asks and gets the real answer.
    let again = client.select_range(0, 990).expect("retry after shed");
    let direct = server.with_server(|sqs| sqs.select_range(0, 990).unwrap());
    assert_eq!(again, direct);
}
