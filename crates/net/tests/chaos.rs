//! Chaos property: **no lies under chaos**.
//!
//! Random fault schedules (stalls, refused connects, mid-frame cuts,
//! delays, frame corruption) are injected between a [`ShardFanout`] and a
//! 4-shard deployment. Whatever the weather, each query must end in one of
//! exactly three ways:
//!
//! 1. a **complete verdict** whose certified content is byte-identical to
//!    the in-process ground truth,
//! 2. a **sound partial verdict** — certified tiles identical to ground
//!    truth, unavailable tiles exactly the shards the client itself failed
//!    to reach, or
//! 3. a **typed error** (transport or wire).
//!
//! Never an accepted wrong answer; never a verdict that hides a reachable
//! shard; never a hang past the fan-out's deadline budget.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use authdb_core::da::{DaConfig, SigningMode};
use authdb_core::qs::QsOptions;
use authdb_core::record::Schema;
use authdb_core::shard::{ShardedAggregator, ShardedQueryServer};
use authdb_core::verify::{EpochView, Verifier};
use authdb_crypto::signer::SchemeKind;
use authdb_net::{
    ChaosProxy, ClientConfig, Fault, FaultPlan, NetError, QsServer, QsServerOptions, ShardFanout,
};

fn cfg() -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        rho: 10,
        rho_prime: 10_000,
        buffer_pages: 256,
        fill: 2.0 / 3.0,
    }
}

struct System {
    sa: ShardedAggregator,
    server: QsServer,
    proxies: Vec<ChaosProxy>,
    verifier: Verifier,
    view: EpochView,
    config: ClientConfig,
}

fn build() -> System {
    let mut rng = StdRng::seed_from_u64(1337);
    let n: i64 = 40;
    let span = n * 10;
    let splits = vec![span / 4, span / 2, 3 * span / 4];
    let mut sa = ShardedAggregator::new(cfg(), splits, &mut rng);
    let boots = sa.bootstrap((0..n).map(|i| vec![i * 10, i]).collect(), 2);
    let sqs = ShardedQueryServer::from_bootstraps(
        sa.public_params(),
        sa.config(),
        sa.map().clone(),
        &boots,
        &QsOptions::default(),
    );
    let verifier = Verifier::new(sa.public_params(), sa.config().schema, sa.config().rho);
    let server = QsServer::spawn(sqs, QsServerOptions::default()).expect("bind");
    sa.advance_clock(12);
    for (shard, summary, recerts) in sa.maybe_publish_summaries() {
        server.with_server(|sqs| {
            sqs.add_summary(shard, summary);
            for m in &recerts {
                sqs.apply(shard, m);
            }
        });
    }
    let view = EpochView::genesis(sa.map(), &sa.public_params()).expect("view");
    let proxies = (0..sa.map().shard_count())
        .map(|_| ChaosProxy::spawn(server.addr(), FaultPlan::healthy()).expect("proxy"))
        .collect();
    System {
        sa,
        server,
        proxies,
        verifier,
        view,
        config: ClientConfig::fast(),
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random per-connection fault script. `chaos_pct` is the probability
/// (in %) that a connection faults at all; the fault kind is then drawn
/// uniformly across the whole menagerie, corruption included.
fn random_script(seed: u64, len: usize, chaos_pct: u64) -> (Vec<Fault>, bool) {
    let mut state = seed;
    let mut corrupting = false;
    let script = (0..len)
        .map(|_| {
            state = splitmix64(state);
            if state % 100 >= chaos_pct {
                return Fault::Pass;
            }
            state = splitmix64(state);
            match state % 6 {
                0 => Fault::Stall,
                1 => Fault::RefuseConnect,
                2 => Fault::DisconnectMidFrame,
                3 => Fault::Delay { micros: 20_000 },
                4 => {
                    corrupting = true;
                    Fault::CorruptVersion
                }
                _ => {
                    corrupting = true;
                    Fault::CorruptBody {
                        bit: splitmix64(state),
                    }
                }
            }
        })
        .collect();
    (script, corrupting)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn no_lies_under_chaos(
        plan_seed in any::<u64>(),
        chaos_pct in 0u64..35,
        queries in prop::collection::vec((-20i64..420, 0i64..420), 1..3),
        rng_seed in any::<u64>(),
    ) {
        let sys = build();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let shard_count = sys.sa.map().shard_count();
        let budget = sys.config.deadline_budget() * shard_count as u32
            + Duration::from_secs(2);

        // Arm every endpoint with its own random schedule, long enough to
        // cover all retries of all queries.
        let mut any_corruption = false;
        for (i, proxy) in sys.proxies.iter().enumerate() {
            let (script, corrupting) = random_script(
                plan_seed.wrapping_add(i as u64),
                queries.len() * (sys.config.retry.max_retries + 1),
                chaos_pct,
            );
            any_corruption |= corrupting;
            proxy.set_plan(FaultPlan::from_script(script));
        }

        for &(lo, w) in &queries {
            let hi = lo + w;
            let endpoints = sys.proxies.iter().map(|p| p.addr().to_string()).collect();
            let mut fanout =
                ShardFanout::new(sys.sa.map().clone(), endpoints, sys.config.clone());
            let started = Instant::now();
            let result = fanout.select_range(lo, hi);
            let elapsed = started.elapsed();
            prop_assert!(
                elapsed <= budget,
                "fan-out exceeded deadline budget: {elapsed:?} > {budget:?}"
            );

            match result {
                Err(NetError::Wire(_)) => {
                    // Typed corruption evidence: only possible if some
                    // schedule actually corrupts.
                    prop_assert!(any_corruption, "Wire error without corruption scheduled");
                }
                Err(e) => {
                    prop_assert!(
                        e.is_retryable(),
                        "fan-out may only fail with retryable or wire errors, got {e:?}"
                    );
                }
                Ok(partial) => {
                    let unreachable = partial.unreachable();
                    match sys.verifier.verify_partial_selection(
                        lo, hi, &partial.answer, &unreachable,
                        &sys.view, sys.sa.now(), true, &mut rng,
                    ) {
                        Err(e) => {
                            // The verifier may only reject when corruption
                            // could have produced a decodable-but-wrong
                            // part; availability faults alone must never
                            // trip it.
                            prop_assert!(
                                any_corruption,
                                "verify rejected without corruption scheduled: {e:?}"
                            );
                        }
                        Ok(verdict) => {
                            // Sound degradation: unavailable tiles are
                            // exactly the client's own outages.
                            let mut unavailable = verdict.unavailable_shards();
                            unavailable.sort_unstable();
                            let mut outages = unreachable.clone();
                            outages.sort_unstable();
                            prop_assert_eq!(unavailable, outages);

                            // No lies: every certified tile's records match
                            // the in-process ground truth for its sub-range.
                            for part in &partial.answer.parts {
                                let (sub_lo, sub_hi) = sys
                                    .sa
                                    .map()
                                    .overlapping(lo, hi)
                                    .into_iter()
                                    .find(|(s, _)| *s == part.shard)
                                    .expect("part for an overlapping shard")
                                    .1;
                                let truth = sys.server.with_server(|sqs| {
                                    sqs.select_shard(part.shard, sub_lo, sub_hi)
                                        .expect("ground truth")
                                });
                                prop_assert_eq!(&part.answer.records, &truth.records);
                            }
                        }
                    }
                }
            }
        }
    }
}
