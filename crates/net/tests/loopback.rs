//! Loopback end-to-end: DA → TCP `QsServer` (4 shards) → `QsClient` →
//! the existing `Verifier::verify_sharded_selection`.
//!
//! Honest answers decoded off the wire must verify exactly like in-process
//! answers, and every entry of the wire-tamper catalog must surface as its
//! pinned typed error (`WireError` at the codec or `VerifyError` at the
//! verifier) — never a panic, a hang, or an accepted forgery.

use rand::rngs::StdRng;
use rand::SeedableRng;

use authdb_core::da::{DaConfig, SigningMode};
use authdb_core::qs::{QsOptions, QueryError};
use authdb_core::record::Schema;
use authdb_core::shard::{ShardedAggregator, ShardedQueryServer};
use authdb_core::verify::{EpochView, Verifier, VerifyError};
use authdb_crypto::signer::SchemeKind;
use authdb_net::{NetError, QsClient, QsServer, QsServerOptions, WireTamper};
use authdb_wire::WireError;

fn cfg(scheme: SchemeKind) -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme,
        mode: SigningMode::Chained,
        rho: 10,
        rho_prime: 10_000,
        buffer_pages: 256,
        fill: 2.0 / 3.0,
    }
}

/// Build a 4-shard system over keys 0..=390, serve it over loopback TCP,
/// and run the shared timeline (summaries at t=12/24/34, one update at
/// t=14) so answers carry summaries and freshness checks are live.
fn serve(scheme: SchemeKind, n: i64) -> (ShardedAggregator, QsServer, Verifier, EpochView) {
    let mut rng = StdRng::seed_from_u64(4242);
    let span = n * 10;
    let splits = vec![span / 4, span / 2, 3 * span / 4];
    let mut sa = ShardedAggregator::new(cfg(scheme), splits, &mut rng);
    let boots = sa.bootstrap((0..n).map(|i| vec![i * 10, i]).collect(), 2);
    let sqs = ShardedQueryServer::from_bootstraps(
        sa.public_params(),
        sa.config(),
        sa.map().clone(),
        &boots,
        &QsOptions::default(),
    );
    let verifier = Verifier::new(sa.public_params(), sa.config().schema, sa.config().rho);
    let server = QsServer::spawn(sqs, QsServerOptions::default()).expect("bind loopback");

    // The DA keeps certifying while the server answers queries: updates and
    // summaries flow into the serving replica through the handle.
    sa.advance_clock(12);
    publish(&mut sa, &server);
    sa.advance_clock(2);
    let (_, msgs) = sa.update_record(1, 1, vec![sa.map().splits()[0] + 15, 777]);
    server.with_server(|sqs| {
        for (shard, m) in &msgs {
            sqs.apply(*shard, m);
        }
    });
    for dt in [10, 10] {
        sa.advance_clock(dt);
        publish(&mut sa, &server);
    }
    let view = EpochView::genesis(sa.map(), &sa.public_params()).expect("genesis view");
    (sa, server, verifier, view)
}

fn publish(sa: &mut ShardedAggregator, server: &QsServer) {
    for (shard, summary, recerts) in sa.maybe_publish_summaries() {
        server.with_server(|sqs| {
            sqs.add_summary(shard, summary);
            for m in &recerts {
                sqs.apply(shard, m);
            }
        });
    }
}

#[test]
fn honest_answers_over_tcp_verify() {
    let mut rng = StdRng::seed_from_u64(7);
    let (sa, server, verifier, view) = serve(SchemeKind::Mock, 40);
    let now = sa.now();
    let mut client = QsClient::connect(server.addr()).expect("connect");
    client.ping().expect("ping");

    for (lo, hi) in [
        (0, 390),     // all four shards
        (95, 205),    // straddles two seams
        (110, 190),   // inside one shard
        (1000, 2000), // beyond the data (gap proof)
        (250, 150),   // inverted
    ] {
        let answer = client.select_range(lo, hi).expect("network answer");
        // The wire round trip is transparent: the decoded answer is the
        // very answer the server built...
        let direct = server.with_server(|sqs| sqs.select_range(lo, hi).unwrap());
        assert_eq!(answer, direct, "[{lo}, {hi}] wire round trip");
        // ...and the unmodified verifier accepts it.
        verifier
            .verify_sharded_selection(lo, hi, &answer, &view, now, true, &mut rng)
            .unwrap_or_else(|e| panic!("[{lo}, {hi}] rejected: {e:?}"));
    }

    // Aggregated stats flow over the wire too (the satellite counter fix).
    let stats = client.stats().expect("stats");
    let direct = server.with_server(|sqs| sqs.stats());
    assert_eq!(stats, direct);
    assert!(stats.queries > 0);

    // Projection over a 4-shard fan-out is a typed refusal.
    match client.project(0, 100, &[1]) {
        Err(NetError::Refused(QueryError::Unsupported)) => {}
        other => panic!("expected Unsupported refusal, got {other:?}"),
    }
}

/// What the client stack said about one tampered exchange.
#[derive(Debug)]
enum Outcome {
    Wire(WireError),
    Verify(VerifyError),
    Accepted,
}

fn tampered_outcome(
    server: &QsServer,
    verifier: &Verifier,
    view: &EpochView,
    tamper: WireTamper,
    now: u64,
    rng: &mut StdRng,
) -> Outcome {
    server.set_tamper(Some(tamper));
    // Fresh connection per strategy: a corrupted frame legitimately
    // desynchronizes the stream.
    let mut client = QsClient::connect(server.addr()).expect("connect");
    let result = client.select_range(95, 205);
    server.set_tamper(None);
    match result {
        Err(NetError::Wire(e)) => Outcome::Wire(e),
        Ok(answer) => {
            match verifier.verify_sharded_selection(95, 205, &answer, view, now, true, rng) {
                Ok(_) => Outcome::Accepted,
                Err(e) => Outcome::Verify(e),
            }
        }
        Err(other) => panic!("{}: unexpected failure class {other:?}", tamper.name()),
    }
}

fn assert_expected(tamper: WireTamper, outcome: &Outcome) {
    let ok = match outcome {
        Outcome::Wire(e) => tamper.expects_wire(e),
        Outcome::Verify(e) => {
            let name = format!("{e:?}");
            tamper
                .expects_verify_names()
                .iter()
                .any(|n| name.starts_with(n))
        }
        Outcome::Accepted => false,
    };
    assert!(ok, "{}: unexpected outcome {outcome:?}", tamper.name());
}

#[test]
fn wire_tamper_catalog_rejected_with_typed_errors() {
    let mut rng = StdRng::seed_from_u64(8);
    let (sa, server, verifier, view) = serve(SchemeKind::Mock, 40);
    let now = sa.now();
    for tamper in WireTamper::CATALOG {
        let outcome = tampered_outcome(&server, &verifier, &view, tamper, now, &mut rng);
        assert_expected(tamper, &outcome);
    }
    // The server is unharmed: a fresh honest exchange still verifies.
    let mut client = QsClient::connect(server.addr()).expect("connect");
    let answer = client.select_range(95, 205).expect("honest answer");
    assert!(verifier
        .verify_sharded_selection(95, 205, &answer, &view, now, true, &mut rng)
        .is_ok());
}

#[test]
fn bas_spot_check_over_tcp() {
    // Full crypto end-to-end once: honest verification plus the two
    // strategies whose rejection path depends on the scheme's encoding.
    let mut rng = StdRng::seed_from_u64(9);
    let (sa, server, verifier, view) = serve(SchemeKind::Bas, 16);
    let now = sa.now();
    let mut client = QsClient::connect(server.addr()).expect("connect");
    let answer = client.select_range(35, 125).expect("network answer");
    assert!(!answer.parts.is_empty());
    verifier
        .verify_sharded_selection(35, 125, &answer, &view, now, true, &mut rng)
        .expect("honest BAS answer verifies");
    for tamper in [WireTamper::BitFlipSignature, WireTamper::VersionDowngrade] {
        let outcome = tampered_outcome(&server, &verifier, &view, tamper, now, &mut rng);
        assert_expected(tamper, &outcome);
    }
}

#[test]
fn garbage_request_bytes_do_not_kill_the_server() {
    use std::io::{Read, Write};
    let (_sa, server, _verifier, _view) = serve(SchemeKind::Mock, 40);

    // A hostile client: a lying length prefix, then raw garbage.
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(&u32::MAX.to_be_bytes()).expect("write");
    let _ = raw.write_all(b"definitely not a frame");
    // The server drops the stream (read returns EOF) instead of answering
    // or crashing.
    let mut sink = Vec::new();
    let _ = raw.read_to_end(&mut sink);
    assert!(sink.is_empty(), "no response to an unparseable request");

    // And keeps serving honest clients.
    let mut client = QsClient::connect(server.addr()).expect("connect");
    client.ping().expect("server still alive");
}

#[test]
fn live_rebalance_over_tcp_mid_query_stream() {
    // The DA→TCP→client pipeline crosses an epoch bump without a restart:
    // in-flight epoch-1 answers verify until the client observes the
    // transition, after which epoch-1 replays are rejected as StaleEpoch
    // and the epoch-2 deployment keeps serving verifiable answers.
    let mut rng = StdRng::seed_from_u64(10);
    let (mut sa, server, verifier, mut view) = serve(SchemeKind::Mock, 40);
    let now = sa.now();
    let mut client = QsClient::connect(server.addr()).expect("connect");

    // An in-flight epoch-1 answer, captured mid-stream.
    let in_flight = client.select_range(95, 205).expect("epoch-1 answer");
    verifier
        .verify_sharded_selection(95, 205, &in_flight, &view, now, true, &mut rng)
        .expect("epoch-1 answer verifies under the epoch-1 view");

    // The DA rebalances: split the hot first shard. The package travels to
    // the live server over the same TCP protocol (Request::Rebalance).
    let split_at = sa.map().splits()[0] / 2;
    let rb = sa.rebalance(
        authdb_core::shard::RebalancePlan::Split {
            shard: 0,
            at: split_at,
        },
        2,
    );
    client
        .rebalance(&rb)
        .expect("server applies the epoch bump");
    let now = sa.now();

    // Until the client observes the transition, its pinned epoch is still
    // 1: the captured answer verifies, a fresh epoch-2 answer is premature.
    verifier
        .verify_sharded_selection(95, 205, &in_flight, &view, now, true, &mut rng)
        .expect("in-flight epoch-1 answer still verifies before observation");
    let fresh = client.select_range(95, 205).expect("epoch-2 answer");
    assert!(matches!(
        verifier.verify_sharded_selection(95, 205, &fresh, &view, now, true, &mut rng),
        Err(VerifyError::StaleEpoch {
            answer_epoch: 2,
            live_epoch: 1
        })
    ));

    // The client fetches the transition chain over the wire and advances.
    let (map, transitions) = client.epoch().expect("epoch info");
    assert_eq!(map.epoch(), 2);
    assert_eq!(transitions.len(), 1);
    view.observe(&transitions, &map, verifier.public_params())
        .expect("observe the epoch bump");

    // Now the situation flips exactly: replays are stale, fresh verifies.
    assert!(matches!(
        verifier.verify_sharded_selection(95, 205, &in_flight, &view, now, true, &mut rng),
        Err(VerifyError::StaleEpoch {
            answer_epoch: 1,
            live_epoch: 2
        })
    ));
    verifier
        .verify_sharded_selection(95, 205, &fresh, &view, now, true, &mut rng)
        .expect("epoch-2 answer verifies after observation");

    // The deployment stays live in the new epoch: an update + summary flow
    // through the handle, and queries keep verifying.
    sa.advance_clock(2);
    let (_, msgs) = sa.update_record(2, 1, vec![115, 4242]);
    server.with_server(|sqs| {
        for (shard, m) in &msgs {
            sqs.apply(*shard, m);
        }
    });
    sa.advance_clock(10);
    publish(&mut sa, &server);
    let now = sa.now();
    let post = client.select_range(0, 390).expect("post-bump answer");
    verifier
        .verify_sharded_selection(0, 390, &post, &view, now, true, &mut rng)
        .expect("live epoch-2 deployment keeps verifying");

    // A hostile package (wrong epoch arithmetic) is refused without
    // touching the server.
    let mut forged = rb.clone();
    forged.plan = authdb_core::shard::RebalancePlan::Merge { left: 0 };
    match client.rebalance(&forged) {
        Err(NetError::Refused(QueryError::BadRebalance)) => {}
        other => panic!("expected BadRebalance refusal, got {other:?}"),
    }
    let again = client.select_range(0, 390).expect("server unharmed");
    verifier
        .verify_sharded_selection(0, 390, &again, &view, now, true, &mut rng)
        .expect("refused package changed nothing");
}
