//! Acceptance: sound partial answers under a single-shard partition.
//!
//! With 1 of 4 shards partitioned, the fan-out must still deliver a
//! verdict certifying the other three tiles — quickly (the dark shard
//! costs its bounded retry budget, not a hang) — and the dual invariant
//! must hold: a shard that *is* reachable but whose part is missing is
//! withholding, and the verifier says so no matter what the outage list
//! claims.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use authdb_core::da::{DaConfig, SigningMode};
use authdb_core::qs::QsOptions;
use authdb_core::record::Schema;
use authdb_core::shard::{ShardedAggregator, ShardedQueryServer};
use authdb_core::verify::{EpochView, TileStatus, Verifier, VerifyError};
use authdb_crypto::signer::SchemeKind;
use authdb_net::{
    ChaosProxy, ClientConfig, FaultPlan, QsServer, QsServerOptions, RetryPolicy, ShardFanout,
};

fn cfg() -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        rho: 10,
        rho_prime: 10_000,
        buffer_pages: 256,
        fill: 2.0 / 3.0,
    }
}

#[test]
fn partitioned_shard_degrades_soundly_and_fast() {
    let mut rng = StdRng::seed_from_u64(99);
    let n: i64 = 40;
    let span = n * 10;
    let mut sa = ShardedAggregator::new(cfg(), vec![span / 4, span / 2, 3 * span / 4], &mut rng);
    let boots = sa.bootstrap((0..n).map(|i| vec![i * 10, i]).collect(), 2);
    let sqs = ShardedQueryServer::from_bootstraps(
        sa.public_params(),
        sa.config(),
        sa.map().clone(),
        &boots,
        &QsOptions::default(),
    );
    let verifier = Verifier::new(sa.public_params(), sa.config().schema, sa.config().rho);
    let server = QsServer::spawn(sqs, QsServerOptions::default()).expect("bind");
    sa.advance_clock(12);
    for (shard, summary, recerts) in sa.maybe_publish_summaries() {
        server.with_server(|sqs| {
            sqs.add_summary(shard, summary);
            for m in &recerts {
                sqs.apply(shard, m);
            }
        });
    }
    let view = EpochView::genesis(sa.map(), &sa.public_params()).expect("view");
    let proxies: Vec<ChaosProxy> = (0..4)
        .map(|_| ChaosProxy::spawn(server.addr(), FaultPlan::healthy()).expect("proxy"))
        .collect();
    // Keep the backoff tax tiny so the partitioned-path latency is
    // dominated by real work, making the 2x bound below meaningful.
    let config = ClientConfig {
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 7,
        },
        ..ClientConfig::fast()
    };
    let endpoints: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();
    let mut fanout = ShardFanout::new(sa.map().clone(), endpoints, config.clone());
    let now = sa.now();

    // Fault-free baseline: warm once, then measure the healthy RTT.
    let warm = fanout.select_range(0, 390).expect("warm-up");
    assert!(warm.is_complete());
    let started = Instant::now();
    let healthy = fanout.select_range(0, 390).expect("healthy fan-out");
    let healthy_rtt = started.elapsed();
    assert!(healthy.is_complete());
    let full = verifier
        .verify_partial_selection(0, 390, &healthy.answer, &[], &view, now, true, &mut rng)
        .expect("healthy answer verifies");
    assert!(full.is_complete());

    // Partition shard 2 and query again.
    proxies[2].partition(true);
    let started = Instant::now();
    let partial = fanout.select_range(0, 390).expect("degraded fan-out");
    let degraded_rtt = started.elapsed();
    assert_eq!(partial.unreachable(), vec![2]);

    // The dark shard costs refused connects and millisecond backoffs, not
    // a hang: the degraded answer arrives within ~2x the healthy RTT
    // (floored against loopback noise — healthy RTTs here are far below a
    // millisecond of scheduler jitter).
    let bound = (healthy_rtt * 2).max(Duration::from_millis(100));
    assert!(
        degraded_rtt <= bound,
        "degraded fan-out took {degraded_rtt:?}, bound {bound:?} (healthy {healthy_rtt:?})"
    );

    // The verdict certifies the three reachable tiles and marks shard 2
    // unavailable — nothing more, nothing less.
    let verdict = verifier
        .verify_partial_selection(
            0,
            390,
            &partial.answer,
            &partial.unreachable(),
            &view,
            now,
            true,
            &mut rng,
        )
        .expect("sound partial verdict");
    assert!(!verdict.is_complete());
    assert_eq!(verdict.unavailable_shards(), vec![2]);
    let certified: Vec<usize> = verdict
        .tiles
        .iter()
        .filter(|t| t.is_certified())
        .map(|t| t.shard())
        .collect();
    assert_eq!(certified, vec![0, 1, 3]);
    for tile in &verdict.tiles {
        if let TileStatus::Certified { shard, records, .. } = tile {
            // Each reachable quarter of 0..=390 holds its 10 records.
            assert_eq!(*records, 10, "shard {shard} tile");
        }
    }

    // The dual: the same parts with shard 2's tile dropped but *no* outage
    // claimed is withholding — reachability makes the omission culpable.
    let mut withheld = healthy.answer.clone();
    withheld.parts.retain(|p| p.shard != 2);
    match verifier.verify_partial_selection(0, 390, &withheld, &[], &view, now, true, &mut rng) {
        Err(VerifyError::ShardWithheld { shard: 2 }) => {}
        other => panic!("expected ShardWithheld for shard 2, got {other:?}"),
    }

    // And claiming an outage while the part rides along is equally dead:
    // forged transport evidence cannot smuggle a part past the check.
    match verifier.verify_partial_selection(
        0,
        390,
        &healthy.answer,
        &[2],
        &view,
        now,
        true,
        &mut rng,
    ) {
        Err(VerifyError::UnexpectedShardAnswer { shard: 2 }) => {}
        other => panic!("expected UnexpectedShardAnswer for shard 2, got {other:?}"),
    }

    // Healing the partition restores complete verdicts for the same client.
    proxies[2].partition(false);
    let healed = fanout.select_range(0, 390).expect("healed fan-out");
    assert!(healed.is_complete());
    let verdict = verifier
        .verify_partial_selection(0, 390, &healed.answer, &[], &view, now, true, &mut rng)
        .expect("healed answer verifies");
    assert!(verdict.is_complete());
}
