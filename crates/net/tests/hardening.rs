//! Server-hardening regressions: the QS must survive clients that stall,
//! flood, or vanish — each previously a way to pin a connection thread
//! (or all of them) forever.

use std::io::Write;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use authdb_core::da::{DaConfig, SigningMode};
use authdb_core::qs::QsOptions;
use authdb_core::record::Schema;
use authdb_core::shard::{ShardedAggregator, ShardedQueryServer};
use authdb_crypto::signer::SchemeKind;
use authdb_net::{QsClient, QsServer, QsServerOptions};

fn cfg() -> DaConfig {
    DaConfig {
        schema: Schema::new(2, 64),
        scheme: SchemeKind::Mock,
        mode: SigningMode::Chained,
        rho: 10,
        rho_prime: 10_000,
        buffer_pages: 256,
        fill: 2.0 / 3.0,
    }
}

/// A small single-shard deployment, served with the given options.
fn serve(opts: QsServerOptions) -> QsServer {
    let mut rng = StdRng::seed_from_u64(7);
    let mut sa = ShardedAggregator::new(cfg(), Vec::new(), &mut rng);
    let boots = sa.bootstrap((0..8).map(|i| vec![i * 10, i]).collect(), 2);
    let sqs = ShardedQueryServer::from_bootstraps(
        sa.public_params(),
        sa.config(),
        sa.map().clone(),
        &boots,
        &QsOptions::default(),
    );
    QsServer::spawn(sqs, opts).expect("bind loopback")
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn slow_loris_connection_is_dropped_by_read_deadline() {
    let server = serve(QsServerOptions {
        read_timeout: Duration::from_millis(200),
        ..QsServerOptions::default()
    });

    // The slow loris: connect, send half a frame header, go silent.
    let mut loris = std::net::TcpStream::connect(server.addr()).expect("connect");
    loris.write_all(&[0u8, 0]).expect("half a header");
    assert!(
        wait_until(Duration::from_secs(1), || server.active_connections() >= 1),
        "the stalled connection should register as active"
    );

    // The read deadline fires and frees the thread — without it, this
    // connection held its thread until the client felt like leaving.
    assert!(
        wait_until(Duration::from_secs(2), || server.active_connections() == 0),
        "the stalled connection must be dropped at the read deadline"
    );

    // And the server is unharmed.
    let mut client = QsClient::connect(server.addr()).expect("connect");
    client.ping().expect("server still alive after the loris");
}

#[test]
fn connection_cap_sheds_load_without_wedging() {
    let server = serve(QsServerOptions {
        max_connections: 2,
        read_timeout: Duration::from_secs(5),
        ..QsServerOptions::default()
    });

    // Two idle connections occupy both slots.
    let hog_a = std::net::TcpStream::connect(server.addr()).expect("connect");
    let hog_b = std::net::TcpStream::connect(server.addr()).expect("connect");
    assert!(
        wait_until(Duration::from_secs(1), || server.active_connections() == 2),
        "both hogs admitted"
    );

    // A third connection is shed at accept: the socket may connect (the
    // OS accepts), but the server closes it without serving — a ping
    // never gets an answer.
    let refused = QsClient::connect(server.addr())
        .and_then(|mut c| c.ping())
        .is_err();
    assert!(refused, "over-cap connection must not be served");

    // Freeing a slot restores service.
    drop(hog_a);
    drop(hog_b);
    assert!(
        wait_until(Duration::from_secs(2), || server.active_connections() == 0),
        "slots are reclaimed when hogs leave"
    );
    let mut client = QsClient::connect(server.addr()).expect("connect");
    client.ping().expect("service restored under the cap");
}

#[test]
fn shutdown_drains_and_returns_promptly() {
    let server = serve(QsServerOptions {
        drain_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_millis(300),
        ..QsServerOptions::default()
    });

    // An in-flight client finishes its exchange; an idle one is abandoned
    // to its read deadline.
    let mut client = QsClient::connect(server.addr()).expect("connect");
    client.ping().expect("ping");
    let _idle = std::net::TcpStream::connect(server.addr()).expect("connect");

    let started = Instant::now();
    server.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "shutdown must return within the drain window (took {elapsed:?})"
    );
}
