//! SigCache tuning walkthrough (Section 4): analyze a workload's query
//! cardinality distribution, run Algorithm 1, and watch the runtime cache
//! cut proof-construction work — including the eager/lazy refresh
//! trade-off under updates.
//!
//! ```sh
//! cargo run --release --example sigcache_tuning
//! ```

use authdb::core::sigcache::{
    distributions, select_cache, RefreshStrategy, SigCache, SigTreeAnalysis,
};
use authdb::crypto::signer::{Keypair, SchemeKind, Signature};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 1 << 14; // 16,384 records
    let mut rng = StdRng::seed_from_u64(23);

    // 1. Offline analysis: probabilities that each conceptual tree node
    //    serves a query, for a short-query-skewed workload.
    let analysis = SigTreeAnalysis::new(&distributions::harmonic(n));
    println!(
        "N = {n}: expected uncached cost = {:.1} aggregation ops/query",
        analysis.total_cost()
    );

    // 2. Algorithm 1 picks the aggregate signatures worth materializing.
    let selection = select_cache(&analysis, 32);
    println!("\nAlgorithm 1 chose {} nodes:", selection.chosen.len());
    for (i, node) in selection.chosen.iter().take(8).enumerate() {
        println!(
            "  #{:<2} T{},{}  (covers {} records) -> expected cost {:.1}",
            i + 1,
            node.level,
            node.j,
            1usize << node.level,
            selection.cost_curve[i]
        );
    }
    let final_cost = selection.cost_curve.last().copied().unwrap_or(0.0);
    println!(
        "Expected cost with cache: {:.1} ops/query ({:.0}% saved)",
        final_cost,
        (1.0 - final_cost / selection.base_cost) * 100.0
    );

    // 3. Runtime: real signatures, real aggregation counts.
    let kp = Keypair::generate(SchemeKind::Mock, &mut rng);
    let mut leaves: Vec<Signature> = (0..n)
        .map(|i| kp.sign(format!("record {i}").as_bytes()))
        .collect();
    let mut cold = SigCache::build(kp.public_params(), &leaves, &[], RefreshStrategy::Eager);
    let mut warm = SigCache::build(
        kp.public_params(),
        &leaves,
        &selection.chosen,
        RefreshStrategy::Eager,
    );
    warm.reset_stats();
    let mut cold_ops = 0;
    let mut warm_ops = 0;
    let queries = 200;
    for _ in 0..queries {
        let q = rng.gen_range(1..=n / 4);
        let lo = rng.gen_range(0..=(n - q));
        let (sig_a, ops_a) = cold.aggregate_range(&leaves, lo, lo + q - 1);
        let (sig_b, ops_b) = warm.aggregate_range(&leaves, lo, lo + q - 1);
        assert_eq!(sig_a, sig_b, "cache must not change the aggregate");
        cold_ops += ops_a;
        warm_ops += ops_b;
    }
    println!(
        "\nMeasured over {queries} random queries: {:.0} ops/query cold vs {:.0} warm ({:.0}% saved)",
        cold_ops as f64 / queries as f64,
        warm_ops as f64 / queries as f64,
        (1.0 - warm_ops as f64 / cold_ops as f64) * 100.0
    );

    // 4. Updates: eager refreshes cached ancestors inside the update;
    //    lazy defers — and wins when a node is invalidated repeatedly.
    let mut eager = SigCache::build(
        kp.public_params(),
        &leaves,
        &selection.chosen,
        RefreshStrategy::Eager,
    );
    let mut lazy = SigCache::build(
        kp.public_params(),
        &leaves,
        &selection.chosen,
        RefreshStrategy::Lazy,
    );
    eager.reset_stats();
    lazy.reset_stats();
    // Hammer one hot record with 50 updates, then one query.
    let pos = n / 2;
    for v in 0..50 {
        let old = leaves[pos].clone();
        let new = kp.sign(format!("record {pos} v{v}").as_bytes());
        eager.on_update(pos, &old, &new);
        lazy.on_update(pos, &old, &new);
        leaves[pos] = new;
    }
    let (_, _) = eager.aggregate_range(&leaves, pos - 10, pos + 10);
    let (_, _) = lazy.aggregate_range(&leaves, pos - 10, pos + 10);
    let e = eager.stats();
    let l = lazy.stats();
    println!("\n50 updates to one hot record, then one query:");
    println!(
        "  eager: {} update-time ops + {} query-time ops",
        e.update_ops, e.query_ops
    );
    println!(
        "  lazy:  {} update-time ops + {} query-time ops",
        l.update_ops, l.query_ops
    );
    println!(
        "  (lazy total {} vs eager total {} — deferral skips refreshes that no query ever reads)",
        l.update_ops + l.query_ops,
        e.update_ops + e.query_ops
    );
}
