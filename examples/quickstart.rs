//! Quickstart: outsource a small database, answer an authenticated range
//! query, verify it, and watch tampering get caught.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use authdb::core::da::{DaConfig, DataAggregator, SigningMode};
use authdb::core::qs::QueryServer;
use authdb::core::record::Schema;
use authdb::core::verify::{Verifier, VerifyError};
use authdb::crypto::signer::SchemeKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // 1. The trusted Data Aggregator certifies the initial database with
    //    BLS (BAS) signatures chained over the indexed attribute.
    let schema = Schema::new(3, 128); // 3 attributes, 128-byte records
    let cfg = DaConfig {
        schema,
        scheme: SchemeKind::Bas,
        mode: SigningMode::Chained,
        rho: 1,
        rho_prime: 900,
        buffer_pages: 1024,
        fill: 2.0 / 3.0,
    };
    let mut da = DataAggregator::new(cfg, &mut rng);
    println!("Certifying 500 records with BAS (BLS over BN254)...");
    let rows: Vec<Vec<i64>> = (0..500).map(|i| vec![i * 10, i % 7, 100 + i]).collect();
    let boot = da.bootstrap(rows, 4);

    // 2. The (untrusted) Query Server receives the replica.
    let mut qs = QueryServer::from_bootstrap(
        da.public_params(),
        schema,
        SigningMode::Chained,
        &boot,
        1024,
        2.0 / 3.0,
    );

    // 3. A user runs a range query and verifies the answer with only the
    //    DA's public parameters.
    let verifier = Verifier::new(da.public_params(), schema, 1);
    let (lo, hi) = (1000, 1200);
    let ans = qs.select_range(lo, hi).unwrap();
    println!(
        "Query {lo}..={hi}: {} records, VO = {} bytes (selectivity-independent)",
        ans.records.len(),
        ans.vo_size(&da.public_params())
    );
    let report = verifier
        .verify_selection(lo, hi, &ans, da.now(), true)
        .expect("honest answer verifies");
    println!(
        "Verified: authenticity + completeness + freshness ({} records, staleness bound {} ticks)",
        report.records, report.max_staleness
    );

    // 4. A compromised server tampers with a value...
    let mut forged = ans.clone();
    forged.records[3].attrs[2] += 1;
    match verifier.verify_selection(lo, hi, &forged, da.now(), true) {
        Err(VerifyError::BadAggregate) => println!("Tampered value rejected: BadAggregate"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // 5. ...or silently drops a qualifying record.
    let mut omission = ans.clone();
    omission.records.remove(5);
    match verifier.verify_selection(lo, hi, &omission, da.now(), true) {
        Err(e) => println!("Dropped record rejected: {e:?}"),
        Ok(_) => panic!("omission must not verify"),
    }

    // 6. Updates disseminate immediately — no Merkle root to re-certify.
    da.advance_clock(1);
    for msg in da.update_record(42, vec![420, 3, 999]) {
        qs.apply(&msg);
    }
    let fresh = qs.select_range(420, 420).unwrap();
    verifier
        .verify_selection(420, 420, &fresh, da.now(), true)
        .expect("fresh answer verifies");
    println!(
        "Update visible and verified immediately: record 42 now carries {:?}",
        fresh.records[0].attrs
    );
}
