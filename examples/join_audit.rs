//! Authenticated equi-join with certified Bloom filters (Section 3.5).
//!
//! A brokerage audits its positions: `Security ⋈ Holding` on the security
//! id. The server must prove both the matches *and* that every security
//! without holdings truly has none — the expensive part that the paper's
//! partitioned-Bloom-filter method (BF) makes cheap compared to shipping
//! boundary values (BV).
//!
//! ```sh
//! cargo run --release --example join_audit
//! ```

use authdb::core::da::{DaConfig, DataAggregator, SigningMode};
use authdb::core::join::{
    execute_join, partition_certification_message, verify_join, JoinMethod, JoinPublisher,
};
use authdb::core::qs::QueryServer;
use authdb::core::record::Schema;
use authdb::core::verify::Verifier;
use authdb::crypto::signer::SchemeKind;
use authdb::workload::tpce;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let schema = Schema::new(2, 32);
    let mut rng = StdRng::seed_from_u64(17);
    let cfg = DaConfig {
        schema,
        scheme: SchemeKind::Bas,
        mode: SigningMode::Chained,
        rho: 1,
        rho_prime: 10_000,
        buffer_pages: 4096,
        fill: 2.0 / 3.0,
    };

    // R = Security (positions indexed; join attribute = security id).
    // Half the securities have holdings (alpha = 0.5).
    let n_r = 300;
    let i_b = 60;
    println!("Certifying Security (R): {n_r} rows...");
    let mut r_da = DataAggregator::new(cfg.clone(), &mut rng);
    let r_boot = r_da.bootstrap(tpce::r_rows(n_r, i_b, 0.5, &mut rng), 4);
    let r_qs = QueryServer::from_bootstrap(
        r_da.public_params(),
        schema,
        SigningMode::Chained,
        &r_boot,
        4096,
        2.0 / 3.0,
    );
    let r_verifier = Verifier::new(r_da.public_params(), schema, 1);

    // S = Holding: 10 positions per held security id.
    println!(
        "Certifying Holding (S): {} rows over {i_b} securities...",
        i_b * 10
    );
    let mut s_da = DataAggregator::new(cfg, &mut rng);
    let s_boot = s_da.bootstrap(tpce::s_rows(i_b * 10, i_b), 4);
    let mut s_qs = QueryServer::from_bootstrap(
        s_da.public_params(),
        schema,
        SigningMode::Chained,
        &s_boot,
        4096,
        2.0 / 3.0,
    );
    let s_verifier = Verifier::new(s_da.public_params(), schema, 1);

    // The DA publishes certified partition filters over S.B
    // (I_B/p = 8 values per partition, m/I_B = 8 bits per value).
    let publisher = JoinPublisher::new(s_da, 8, 8.0);
    println!(
        "Published {} certified filter partitions ({} filter bytes total).",
        publisher.filters().partition_count(),
        publisher.filters().total_filter_bytes()
    );

    // Audit the first third of the securities ledger with both methods.
    let (lo, hi) = (0, (n_r / 3 - 1) as i64);
    for method in [JoinMethod::BoundaryValues, JoinMethod::BloomFilter] {
        let r_ans = r_qs.select_range(lo, hi).unwrap();
        let selected = r_ans.records.len();
        let ans = execute_join(
            r_ans,
            1,
            &mut s_qs,
            publisher.filters(),
            publisher.partition_sigs(),
            method,
        );
        verify_join(
            &r_verifier,
            s_verifier.public_params(),
            &schema,
            partition_certification_message,
            lo,
            hi,
            &ans,
        )
        .expect("join verifies");
        let matches: usize = ans.runs.iter().map(|r| r.records.len()).sum();
        println!(
            "\n{method:?}: {selected} R rows -> {} matched values ({matches} S rows), {} proven absent",
            ans.runs.len(),
            ans.absences.len()
        );
        println!(
            "  VO: {} boundary proofs + {} shipped filters = {} bytes (paper accounting: {} bytes)",
            ans.gap_pool.len(),
            ans.partitions.len(),
            ans.vo_size(s_verifier.public_params()),
            ans.paper_vo_size(&schema, 4),
        );
    }

    println!(
        "\nBoth methods verified end-to-end; BF ships filters instead of per-value boundaries."
    );
}
