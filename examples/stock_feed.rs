//! The paper's motivating scenario (Section 1): an online trading platform.
//!
//! A data aggregator disseminates live price quotes through an untrusted
//! query server. Users verify authenticity, completeness, *and freshness* —
//! a server replaying yesterday's price is caught by the certified bitmap
//! summaries, even though the stale answer carries a perfectly valid
//! signature.
//!
//! ```sh
//! cargo run --release --example stock_feed
//! ```

use authdb::core::da::{DaConfig, DataAggregator, SigningMode};
use authdb::core::qs::QueryServer;
use authdb::core::record::Schema;
use authdb::core::verify::{Verifier, VerifyError};
use authdb::crypto::signer::SchemeKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Records: (symbol id, price in cents, volume). One tick = one second;
    // summaries publish every rho = 2s; signatures are renewed after 60s.
    let schema = Schema::new(3, 64);
    let cfg = DaConfig {
        schema,
        scheme: SchemeKind::Bas,
        mode: SigningMode::Chained,
        rho: 2,
        rho_prime: 60,
        buffer_pages: 1024,
        fill: 2.0 / 3.0,
    };
    let mut da = DataAggregator::new(cfg, &mut rng);
    println!("Exchange opens: certifying 200 symbols...");
    let rows: Vec<Vec<i64>> = (0..200)
        .map(|i| vec![i, 10_000 + rng.gen_range(0..5_000), 0])
        .collect();
    let boot = da.bootstrap(rows, 4);
    let mut qs = QueryServer::from_bootstrap(
        da.public_params(),
        schema,
        SigningMode::Chained,
        &boot,
        1024,
        2.0 / 2.0_f64.max(1.5),
    );
    let verifier = Verifier::new(da.public_params(), schema, 2);

    // A user watches symbols 40..=45.
    let watchlist = (40, 45);
    let before = qs.select_range(watchlist.0, watchlist.1).unwrap();
    println!(
        "Initial quotes: {:?}",
        before
            .records
            .iter()
            .map(|r| (r.attrs[0], r.attrs[1]))
            .collect::<Vec<_>>()
    );

    // Trading: 30 seconds of live updates, summaries flowing on schedule.
    println!("\nLive feed: 30s of updates, summary every 2s...");
    let mut summaries_published = 0;
    for _second in 0..30 {
        da.advance_clock(1);
        for _ in 0..rng.gen_range(1..5) {
            let sym = rng.gen_range(0..200u64);
            let new_price = 10_000 + rng.gen_range(0..5_000);
            let volume = rng.gen_range(0..1_000);
            for msg in da.update_record(sym, vec![sym as i64, new_price, volume]) {
                qs.apply(&msg);
            }
        }
        if let Some((summary, recerts)) = da.maybe_publish_summary() {
            qs.add_summary(summary);
            summaries_published += 1;
            for m in recerts {
                qs.apply(&m);
            }
        }
    }
    println!("Published {summaries_published} certified update summaries.");

    // The honest fresh answer verifies with a tight staleness bound.
    let fresh = qs.select_range(watchlist.0, watchlist.1).unwrap();
    let report = verifier
        .verify_selection(watchlist.0, watchlist.1, &fresh, da.now(), true)
        .expect("fresh quotes verify");
    println!(
        "\nFresh watchlist verified: {} quotes, staleness bound {} s (rho = 2 s)",
        report.records, report.max_staleness
    );

    // A compromised server replays the pre-open answer. The signature is
    // genuine — but the bitmap summaries expose the withheld updates.
    let mut replay = before.clone();
    replay.summaries = fresh.summaries.clone(); // client fetched summaries itself
    match verifier.verify_selection(watchlist.0, watchlist.1, &replay, da.now(), true) {
        Err(VerifyError::Stale { rid, exposed_by }) => println!(
            "Replay attack caught: symbol {rid} is stale (exposed by summary #{exposed_by})"
        ),
        Ok(_) => {
            // Possible only if no watched symbol was updated in 30 s.
            println!("(no watched symbol changed during the session — rerun with another seed)")
        }
        Err(e) => println!("Replay rejected: {e:?}"),
    }

    // Old quiet symbols still verify cheaply thanks to active renewal: their
    // signatures were refreshed, so few summaries are needed.
    let (avg_age, max_age) = da.signature_age_stats();
    println!("\nSignature ages after renewal: avg {avg_age:.1} s, max {max_age} s (rho' = 60 s)");
}
